#include "core/coloring.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/bitset.h"
#include "common/counters.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/trace.h"

namespace diva {

const char* SelectionStrategyToString(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kBasic:
      return "Basic";
    case SelectionStrategy::kMinChoice:
      return "MinChoice";
    case SelectionStrategy::kMaxFanOut:
      return "MaxFanOut";
  }
  return "unknown";
}

namespace {

/// splitmix64 finalizer: decorrelates XOR-accumulated fingerprints
/// before they are folded into a combined hash, so two states differing
/// by a pair of swapped tags do not cancel out.
inline uint64_t MixBits(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Immutable search state shared by every engine one ColorConstraints
/// call spawns (all restart attempts plus the greedy pass): packed target
/// bitmaps, the hoisted QI-similarity target orders, the row->constraint
/// incidence lists that drive O(incidence) bookkeeping updates, and the
/// row tag table behind every set fingerprint.
struct SearchContext {
  SearchContext(const Relation& relation, const ConstraintGraph& graph) {
    size_t n = graph.NumNodes();
    size_t num_rows = relation.NumRows();
    target_bitmap.resize(n);
    incidence.resize(num_rows);
    for (size_t j = 0; j < n; ++j) {
      target_bitmap[j].Resize(num_rows);
      for (RowId row : graph.targets[j]) {
        target_bitmap[j].Set(row);
        incidence[row].push_back(static_cast<uint32_t>(j));
      }
    }
    // One stable_sort per constraint, once, in parallel — CandidatesFor
    // used to redo this sort on every node visit. Filtering these orders
    // by the claimed bitset reproduces a fresh sort of the free subset
    // exactly, because SortByQiSimilarity's comparator is a strict total
    // order independent of which rows are present.
    sorted_targets = ParallelMap<std::vector<RowId>>(
        n, /*grain=*/1, [&](size_t j) {
          return SortByQiSimilarity(relation, graph.targets[j]);
        });
    DIVA_COUNTER_ADD("coloring.target_sorts", n);
    if (graph.row_tags.size() >= num_rows) {
      row_tags = graph.row_tags;
    } else {
      // Hand-built graph (tests construct these): regenerate the same
      // fixed-seed tags BuildConstraintGraph would have stored.
      row_tags = MakeRowTags(num_rows);
    }
  }

  std::vector<Bitset> target_bitmap;
  std::vector<std::vector<uint32_t>> incidence;
  std::vector<std::vector<RowId>> sorted_targets;
  std::vector<uint64_t> row_tags;
};

/// Per-(j, count) preserved contributions of one cluster: constraint j
/// gains `count` (= |cluster|) iff the cluster lies entirely inside j's
/// target set. Static facts, so they are computed once per enumerated
/// cluster and reused on every trial and memo replay.
using SparseContrib = std::vector<std::pair<uint32_t, uint64_t>>;

/// An enumerated cluster with its static derived facts precomputed:
/// rows sorted ascending, the XOR-of-tags fingerprint, and the sparse
/// contribution list. TryAssign consumes these directly instead of
/// re-sorting/re-hashing/re-counting per search step.
struct PreparedCluster {
  uint64_t fingerprint = 0;
  std::vector<RowId> rows;
  SparseContrib contrib;
};
struct PreparedCandidate {
  size_t preserved = 0;
  std::vector<PreparedCluster> clusters;
};
using CandidateList = std::shared_ptr<const std::vector<PreparedCandidate>>;

/// Outcome of phase-1 candidate validation (the read-only half of
/// TryAssign). kFail covers the checks that bump no counter (claimed-row
/// overlap, upper bound); kFailForward is the forward-check failure,
/// which the consumer must account into coloring.forward_check_fails
/// exactly as the inline path would.
enum class Verdict : int {
  kPending = 0,  // probe not finished; fall back to inline validation
  kFail = 1,
  kFailForward = 2,
  kPass = 3,
};

/// Frozen copy of exactly the state phase-1 validation reads. Probes
/// validate sibling candidates against this snapshot on idle workers;
/// the frame's state at candidate i provably equals its entry state (a
/// failed TryAssign mutates nothing and Unassign restores exactly), so
/// a snapshot verdict is valid for the whole frame.
struct ProbeSnapshot {
  Bitset claimed;
  std::vector<uint64_t> preserved;
  std::vector<uint64_t> free_count;
  std::vector<uint8_t> uncolored;
  std::unordered_set<uint64_t> active_fps;
};

/// Phase-1 validation over an arbitrary state view: the live engine
/// (LiveView) or a frozen ProbeSnapshot (SnapshotView). Pure — bumps no
/// counters, consumes no randomness, mutates only the view's scratch
/// bitset (restored before returning) and the caller's out-params.
/// `fresh`/`reused` may be null when the caller only needs the verdict.
template <typename View>
Verdict ValidateCandidate(const PreparedCandidate& candidate,
                          const ConstraintSet& constraints,
                          const std::vector<Bitset>& target_bitmap,
                          bool forward_check, View& view,
                          std::vector<const PreparedCluster*>* fresh,
                          std::vector<uint64_t>* reused,
                          std::vector<uint64_t>* delta) {
  size_t n = constraints.size();
  std::vector<const PreparedCluster*> local_fresh;
  if (fresh == nullptr) fresh = &local_fresh;
  for (const PreparedCluster& cluster : candidate.clusters) {
    if (view.IsActive(cluster)) {
      if (reused != nullptr) reused->push_back(cluster.fingerprint);
      continue;
    }
    // A new cluster may not touch any row owned by a different active
    // cluster (disjoint-or-equal condition).
    for (RowId row : cluster.rows) {
      if (view.IsClaimed(row)) return Verdict::kFail;
    }
    for (const auto& [j, count] : cluster.contrib) {
      (*delta)[j] += count;
    }
    fresh->push_back(&cluster);
  }
  // Upper-bound condition over every constraint (the paper checks
  // neighbors; non-neighbors have zero contribution, so checking all is
  // equivalent and simpler).
  for (size_t j = 0; j < n; ++j) {
    if (view.Preserved(j) + (*delta)[j] > constraints[j].upper()) {
      return Verdict::kFail;
    }
  }
  // Forward check: every still-uncolored constraint must be able to
  // reach its lower bound from its preserved total plus the target rows
  // that would remain free after this assignment. Fresh rows are marked
  // in a scratch bitset once, then each constraint's newly-claimed
  // count is one word-wise popcount kernel instead of per-row probes.
  // (Disabled in the greedy second pass, where partial colorings are
  // acceptable.)
  if (forward_check) {
    Bitset& scratch = view.Scratch();
    for (const PreparedCluster* cluster : *fresh) {
      for (RowId row : cluster->rows) scratch.Set(row);
    }
    bool feasible = true;
    for (size_t j = 0; j < n && feasible; ++j) {
      if (!view.Uncolored(j)) continue;
      uint64_t claimed_j = Bitset::IntersectionCount(scratch, target_bitmap[j]);
      uint64_t reachable =
          view.Preserved(j) + (*delta)[j] + (view.FreeCount(j) - claimed_j);
      if (reachable < constraints[j].lower()) {
        if (View::kLive && std::getenv("DIVA_DEBUG_COLORING")) {
          // lint: allow-print — env-gated debug aid, off by default.
          std::fprintf(stderr,
                       "fwd-fail j=%zu lower=%u preserved=%llu delta=%llu "
                       "free=%llu claimed=%llu\n",
                       j, constraints[j].lower(),
                       (unsigned long long)view.Preserved(j),
                       (unsigned long long)(*delta)[j],
                       (unsigned long long)view.FreeCount(j),
                       (unsigned long long)claimed_j);
        }
        feasible = false;
      }
    }
    for (const PreparedCluster* cluster : *fresh) {
      for (RowId row : cluster->rows) scratch.Reset(row);
    }
    if (!feasible) return Verdict::kFailForward;
  }
  return Verdict::kPass;
}

/// ValidateCandidate view over a frozen ProbeSnapshot. Runs on TaskGroup
/// workers; touches no engine state, so the engine may even be destroyed
/// while a stray probe drains (closures own the snapshot and candidate
/// list via shared_ptr, and the driver-scoped context/constraints
/// outlive the task group).
struct SnapshotView {
  static constexpr bool kLive = false;
  const ProbeSnapshot* snapshot;
  Bitset* scratch;

  bool IsActive(const PreparedCluster& cluster) const {
    return snapshot->active_fps.count(cluster.fingerprint) > 0;
  }
  bool IsClaimed(RowId row) const { return snapshot->claimed.Test(row); }
  uint64_t Preserved(size_t j) const { return snapshot->preserved[j]; }
  bool Uncolored(size_t j) const { return snapshot->uncolored[j] != 0; }
  uint64_t FreeCount(size_t j) const { return snapshot->free_count[j]; }
  Bitset& Scratch() { return *scratch; }
};

/// Backtracking engine implementing Algorithm 4 with dynamic candidate
/// enumeration: a node's clusterings are built from the target rows not
/// yet claimed by any chosen cluster, sized to the constraint's
/// *remaining* lower-bound deficit (occurrences preserved by other
/// constraints' clusters count). Disjoint-or-equal is enforced through a
/// claimed-row bitset; upper bounds through incremental per-constraint
/// preserved-count totals. Active clusters and candidate memo entries are
/// keyed by XOR-of-row-tag fingerprints that update in O(1) per row.
class ColoringEngine {
 public:
  ColoringEngine(const Relation& relation, const ConstraintSet& constraints,
                 const ConstraintGraph& graph, const SearchContext& context,
                 const ColoringOptions& options, bool forward_check)
      : relation_(relation),
        constraints_(constraints),
        graph_(graph),
        context_(context),
        options_(options),
        forward_check_(forward_check),
        rng_(options.seed) {
    size_t n = constraints.size();
    assignment_.assign(n, -1);
    sacrificed_.Resize(n);
    preserved_.assign(n, 0);
    basic_order_.resize(n);
    for (size_t i = 0; i < n; ++i) basic_order_[i] = i;
    if (options.strategy == SelectionStrategy::kBasic) {
      rng_.Shuffle(&basic_order_);
    }
    free_count_.resize(n);
    for (size_t j = 0; j < n; ++j) {
      free_count_[j] = graph.targets[j].size();
    }
    claimed_fp_.assign(n, 0);
    in_target_scratch_.assign(n, 0);
    delta_scratch_.assign(n, 0);
    // The single empty clustering handed to zero-deficit nodes — shared
    // so the hot "lower bound already met" path allocates nothing.
    trivial_candidates_ =
        std::make_shared<const std::vector<PreparedCandidate>>(1);
    // Shared zero-element list for structurally dead nodes (the
    // EnumerationIsTriviallyEmpty fast path skips enumeration and memo).
    empty_candidates_ =
        std::make_shared<const std::vector<PreparedCandidate>>();
    // Nogood replay charges the recorded cost of an uninterrupted
    // subtree; a cancellable run can be truncated anywhere inside it,
    // which no recorded cost reproduces — so learning is confined to
    // runs that cannot be cancelled.
    nogood_enabled_ = options.nogood && options.cancel == nullptr &&
                      !options.deadline.CanBeCancelled();
    claimed_.Resize(relation.NumRows());
    fresh_scratch_.Resize(relation.NumRows());
    memo_.resize(n);
    outcome_.assignment.assign(n, -1);
    outcome_.preserved.assign(n, 0);
  }

  ColoringOutcome Run() {
    SnapshotIfBetter();
    bool finished = Color();
    outcome_.complete = finished && sacrificed_count_ == 0;
    outcome_.steps = steps_;
    outcome_.backtracks = backtracks_;
    outcome_.budget_exhausted = budget_exhausted_;
    return std::move(outcome_);
  }

 private:
  struct ActiveCluster {
    std::vector<RowId> rows;  // sorted ascending; the identity
    SparseContrib contrib;
    int refcount = 0;
  };
  /// Keyed by the cluster's row-set fingerprint; `rows` inside the entry
  /// is the collision oracle (checked under DCHECK on every hit).
  using Registry = std::unordered_map<uint64_t, ActiveCluster>;

  struct MemoKey {
    uint64_t fingerprint;  // claimed rows restricted to the node's targets
    uint64_t deficit;
    uint64_t headroom;
    bool operator==(const MemoKey& other) const {
      return fingerprint == other.fingerprint && deficit == other.deficit &&
             headroom == other.headroom;
    }
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey& key) const {
      uint64_t h = key.fingerprint;
      h ^= (key.deficit + 0x9e3779b97f4a7c15ULL) + (h << 6) + (h >> 2);
      h ^= (key.headroom + 0x9e3779b97f4a7c15ULL) + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  /// Memo values are shared immutable lists: a hit hands back a refcount
  /// bump, not a deep copy, and an epoch eviction during a recursive
  /// Color() call cannot pull a list out from under an outer stack frame
  /// still iterating it.
  using Memo = std::unordered_map<MemoKey, CandidateList, MemoKeyHash>;

 public:
#ifndef NDEBUG
  /// Full state copy behind a nogood entry — the fingerprint-collision
  /// oracle (mirrors the cluster-registry `rows` oracle): two states may
  /// only share a nogood key if every component below matches.
  struct NogoodSignature {
    size_t node = 0;
    uint64_t deficit = 0;
    uint64_t headroom = 0;
    std::vector<uint64_t> claimed_fp;
    std::vector<uint64_t> preserved;
    std::vector<uint8_t> colored;
    std::vector<uint8_t> sacrificed;
    std::vector<uint64_t> active_fps;  // sorted
    friend bool operator==(const NogoodSignature& a,
                           const NogoodSignature& b) = default;
  };
#endif

  /// One learned dead subtree: replaying it charges the recorded
  /// step/backtrack cost and fails the frame without re-exploring.
  struct NogoodRec {
    uint64_t steps = 0;
    uint64_t backtracks = 0;
    /// True for entries imported via SeedNogoods: they describe the
    /// publishing attempt's (different) candidate list, so replay is a
    /// lossy prune and a re-derived cost may legitimately differ.
    bool seeded = false;
#ifndef NDEBUG
    std::shared_ptr<const NogoodSignature> signature;
#endif
  };
  /// Insertion-ordered publication log (key, rec) of self-learned
  /// entries, for the share_nogoods attempt-boundary handoff.
  using NogoodLog = std::vector<std::pair<uint64_t, NogoodRec>>;

 private:
  /// Probe bookkeeping for one candidate-loop frame: verdict cells the
  /// speculative validations publish into, plus their tickets so the
  /// frame can retract unclaimed probes on exit.
  struct ProbeFrame {
    std::vector<std::pair<size_t, std::shared_ptr<std::atomic<int>>>> slots;
    std::vector<uint64_t> tickets;
    TaskGroup* group = nullptr;

    /// Verdict for candidate `index`: kPending when no probe was
    /// submitted for it or the probe has not finished — the caller then
    /// validates inline as usual.
    Verdict Consume(size_t index) const {
      for (const auto& [slot_index, verdict] : slots) {
        if (slot_index == index) {
          return static_cast<Verdict>(
              verdict->load(std::memory_order_acquire));
        }
      }
      return Verdict::kPending;
    }
  };

  uint64_t FingerprintOf(const std::vector<RowId>& rows) const {
    uint64_t fp = 0;
    for (RowId row : rows) fp ^= context_.row_tags[row];
    return fp;
  }

  /// Claims `row` for an active cluster: O(#constraints targeting row)
  /// bookkeeping instead of a loop over every constraint.
  void ClaimRow(RowId row) {
    claimed_.Set(row);
    for (uint32_t j : context_.incidence[row]) {
      --free_count_[j];
      claimed_fp_[j] ^= context_.row_tags[row];
    }
  }

  void ReleaseRow(RowId row) {
    claimed_.Reset(row);
    for (uint32_t j : context_.incidence[row]) {
      ++free_count_[j];
      claimed_fp_[j] ^= context_.row_tags[row];
    }
  }

  bool Color() {
    if (colored_count_ + sacrificed_count_ == constraints_.size()) {
      return true;
    }
    // Poll the deadline before candidate enumeration too: CandidatesFor
    // can be expensive, and an expired run should not start another one.
    if (options_.deadline.Cancelled()) {
      budget_exhausted_ = true;
      return false;
    }
    size_t node = SelectNode();

    // Nogood replay: if this exact (node, state) frame is recorded as a
    // dead subtree and replaying its cost cannot trip a budget check the
    // real exploration would not have tripped, charge the recorded
    // steps/backtracks and fail immediately. Replay IS re-execution:
    // a dead subtree mutates nothing durable (state fully unwinds, no
    // snapshot, no randomness), so the only observable difference it
    // leaves is the step/backtrack tally — which the replay reproduces.
    uint64_t nogood_key = 0;
    if (nogood_enabled_) {
      nogood_key = NogoodKeyFor(node);
      auto it = nogood_.find(nogood_key);
      if (it != nogood_.end() && NogoodReplayValid(it->second)) {
        DIVA_DCHECK(NogoodSignatureMatches(it->second, node));
        DIVA_COUNTER_ADD("coloring.nogood_hits", 1);
        steps_ += it->second.steps;
        backtracks_ += it->second.backtracks;
        return false;
      }
      DIVA_COUNTER_ADD("coloring.nogood_misses", 1);
    }

    CandidateList candidates = CandidatesFor(node);
    if (!forward_check_ && candidates->empty()) {
      // Greedy mode: a node with no admissible clustering is sacrificed
      // (left uncolored) so the rest of Sigma can still be satisfied.
      sacrificed_.Set(node);
      ++sacrificed_count_;
      if (Color()) return true;
      sacrificed_.Reset(node);
      --sacrificed_count_;
      return false;
    }

    // Frame entry marks for the nogood learning conditions.
    const uint64_t entry_steps = steps_;
    const uint64_t entry_backtracks = backtracks_;
    const uint64_t entry_draws = rng_.DrawCount();
    const size_t entry_best = best_colored_;

    ProbeFrame probes;
    MaybeSubmitProbes(candidates, &probes);
    bool colored = CandidateLoop(node, candidates, &probes);
    AbandonProbes(&probes);

    // Learn the frame as a nogood iff replaying it later is provably
    // identical to re-exploring it: every candidate failed, no budget /
    // stall / cancellation tripped (the subtree ran to natural
    // exhaustion), the best partial coloring did not improve (no
    // snapshot, no last_improvement_ move), and no randomness was drawn
    // (the subtree is a pure function of the keyed state). Zero-cost
    // frames are not worth an entry.
    if (!colored && nogood_enabled_ && !budget_exhausted_ &&
        best_colored_ == entry_best && rng_.DrawCount() == entry_draws &&
        steps_ > entry_steps) {
      RecordNogood(nogood_key, node, steps_ - entry_steps,
                   backtracks_ - entry_backtracks);
    }
    return colored;
  }

  /// The candidate loop of one frame: tries each prepared candidate in
  /// order, consuming speculative phase-1 verdicts when a probe finished
  /// in time (a fail verdict skips the inline validation entirely; the
  /// forward-check counter is charged exactly as the inline path would).
  bool CandidateLoop(size_t node, const CandidateList& candidates,
                     ProbeFrame* probes) {
    size_t index = 0;
    for (const PreparedCandidate& candidate : *candidates) {
      ++steps_;
      if (steps_ > options_.step_budget ||
          (options_.stall_limit > 0 &&
           steps_ - last_improvement_ > options_.stall_limit) ||
          (options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_relaxed)) ||
          options_.deadline.Cancelled()) {
        budget_exhausted_ = true;
        return false;
      }
      Verdict verdict = probes->Consume(index);
      if (verdict == Verdict::kFail || verdict == Verdict::kFailForward) {
        DIVA_DCHECK(VerdictMatchesLive(candidate, verdict));
        if (verdict == Verdict::kFailForward) {
          DIVA_COUNTER_ADD("coloring.forward_check_fails", 1);
        }
        DIVA_COUNTER_ADD_EXEC("coloring.spec_probe_hits", 1);
        ++index;
        continue;
      }
      std::vector<uint64_t> activated;
      if (!TryAssign(candidate, &activated)) {
        ++index;
        continue;
      }
      assignment_[node] = static_cast<int>(candidate.preserved);
      ++colored_count_;
      SnapshotIfBetter();
      if (Color()) return true;
      Unassign(node, activated);
      ++backtracks_;
      if (budget_exhausted_) return false;
      ++index;
    }
    return false;
  }

  void DeficitHeadroom(size_t node, uint64_t* deficit,
                       uint64_t* headroom) const {
    const DiversityConstraint& constraint = constraints_[node];
    uint64_t have = preserved_[node];
    *deficit = constraint.lower() > have ? constraint.lower() - have : 0;
    // have <= upper always (TryAssign enforces the upper bound).
    *headroom = constraint.upper() - have;
  }

  /// Hash identity of one candidate-loop frame: the node and its local
  /// (claimed-fingerprint, deficit, headroom) key, then a positional
  /// fold over the full search state — the dead subtree below the frame
  /// reads all of it — and the active-cluster partition (TryAssign's
  /// registry-reuse path depends on how claimed rows are grouped, not
  /// just on which rows are claimed). Collisions are caught by the
  /// NogoodSignature oracle under DCHECK.
  uint64_t NogoodKeyFor(size_t node) const {
    uint64_t deficit = 0;
    uint64_t headroom = 0;
    DeficitHeadroom(node, &deficit, &headroom);
    uint64_t h = MixBits(0x9e3779b97f4a7c15ULL + node);
    h ^= MixBits(claimed_fp_[node] + deficit * 0x100000001b3ULL + headroom);
    size_t n = constraints_.size();
    for (size_t j = 0; j < n; ++j) {
      uint64_t v = claimed_fp_[j] + preserved_[j] * 2 +
                   (assignment_[j] >= 0 ? 1 : 0);
      if (sacrificed_.Test(j)) v += 0x51ed270b7a14ULL;
      h = h * 0x100000001b3ULL ^ MixBits(v);
    }
    return h ^ registry_xor_;
  }

  /// Replaying `rec` is identical to re-exploring iff no budget or stall
  /// check would have tripped inside the subtree: checks trip at
  /// steps_ > limit, the subtree's steps counter peaks at
  /// steps_ + rec.steps, and a dead subtree never moves
  /// last_improvement_. (Cancellation sources are excluded wholesale by
  /// nogood_enabled_ — a cancellable run can be truncated anywhere,
  /// which no recorded cost can reproduce.)
  bool NogoodReplayValid(const NogoodRec& rec) const {
    if (steps_ + rec.steps > options_.step_budget) return false;
    if (options_.stall_limit > 0 &&
        steps_ + rec.steps - last_improvement_ > options_.stall_limit) {
      return false;
    }
    return true;
  }

  void RecordNogood(uint64_t key, size_t node, uint64_t steps,
                    uint64_t backtracks) {
    (void)node;
    auto it = nogood_.find(key);
    if (it != nogood_.end()) {
      if (it->second.seeded) {
        // Re-learned under this attempt's own candidate list: upgrade
        // the lossy seeded prune to an exact self entry.
        it->second.steps = steps;
        it->second.backtracks = backtracks;
        it->second.seeded = false;
#ifndef NDEBUG
        it->second.signature = MakeNogoodSignature(node);
#endif
        if (nogood_log_.size() < options_.nogood_capacity) {
          nogood_log_.emplace_back(key, it->second);
        }
        return;
      }
      // The frame re-ran because the entry was not replay-valid at the
      // time (budget headroom too small). It must have re-derived the
      // identical dead subtree.
      DIVA_DCHECK(it->second.steps == steps &&
                  it->second.backtracks == backtracks);
      return;
    }
    if (nogood_.size() >= options_.nogood_capacity) {
      // Epoch eviction, like the candidate memo: drop everything rather
      // than track recency. The publication log keeps already-learned
      // entries (they were valid learnings; only the lookup table is
      // bounded).
      DIVA_COUNTER_ADD("coloring.nogood_evictions", nogood_.size());
      nogood_.clear();
    }
    NogoodRec rec;
    rec.steps = steps;
    rec.backtracks = backtracks;
#ifndef NDEBUG
    rec.signature = MakeNogoodSignature(node);
#endif
    nogood_.emplace(key, rec);
    if (nogood_log_.size() < options_.nogood_capacity) {
      nogood_log_.emplace_back(key, std::move(rec));
    }
  }

#ifndef NDEBUG
  std::shared_ptr<const NogoodSignature> MakeNogoodSignature(size_t node) {
    auto sig = std::make_shared<NogoodSignature>();
    sig->node = node;
    DeficitHeadroom(node, &sig->deficit, &sig->headroom);
    sig->claimed_fp = claimed_fp_;
    sig->preserved = preserved_;
    size_t n = constraints_.size();
    sig->colored.resize(n);
    sig->sacrificed.resize(n);
    for (size_t j = 0; j < n; ++j) {
      sig->colored[j] = assignment_[j] >= 0 ? 1 : 0;
      sig->sacrificed[j] = sacrificed_.Test(j) ? 1 : 0;
    }
    sig->active_fps.reserve(registry_.size());
    for (const auto& [fp, entry] : registry_) sig->active_fps.push_back(fp);
    std::sort(sig->active_fps.begin(), sig->active_fps.end());
    return sig;
  }
#endif

  bool NogoodSignatureMatches(const NogoodRec& rec, size_t node) {
#ifndef NDEBUG
    // Seeded entries carry the publishing engine's signature; states are
    // directly comparable because both engines share the SearchContext
    // (and thus the row-tag table).
    if (rec.signature == nullptr) return true;
    return *MakeNogoodSignature(node) == *rec.signature;
#else
    (void)rec;
    (void)node;
    return true;
#endif
  }

  /// Debug oracle for probe consumption: a snapshot verdict must equal
  /// what inline phase-1 validation computes against the live state.
  bool VerdictMatchesLive(const PreparedCandidate& candidate,
                          Verdict consumed) {
    std::vector<uint64_t> delta(constraints_.size(), 0);
    LiveView view{this};
    return ValidateCandidate(candidate, constraints_, context_.target_bitmap,
                             forward_check_, view, nullptr, nullptr,
                             &delta) == consumed;
  }

  /// Submits speculative phase-1 validations of the frame's sibling
  /// candidates (indices 1..kMaxProbesPerFrame; index 0 is about to run
  /// inline anyway) to idle task-group workers. Gated on an idle worker
  /// being available so a saturated group never queues probe work behind
  /// real attempts, and on forward checking being enabled — greedy-mode
  /// phase 1 is too cheap to ship to another thread.
  void MaybeSubmitProbes(const CandidateList& candidates, ProbeFrame* frame) {
    if (probe_group_ == nullptr || probe_pool_ == nullptr) return;
    if (!forward_check_ || candidates->size() < 2) return;
    if (!probe_group_->HasIdleWorker()) return;
    size_t n = constraints_.size();
    auto snapshot = std::make_shared<ProbeSnapshot>();
    snapshot->claimed = claimed_;
    snapshot->preserved = preserved_;
    snapshot->free_count = free_count_;
    snapshot->uncolored.resize(n);
    for (size_t j = 0; j < n; ++j) {
      snapshot->uncolored[j] = assignment_[j] < 0 ? 1 : 0;
    }
    snapshot->active_fps.reserve(registry_.size());
    for (const auto& [fp, entry] : registry_) snapshot->active_fps.insert(fp);
    frame->group = probe_group_;
    // The closures own everything they touch (snapshot, candidate list,
    // verdict cell) or point at driver-scoped immutables (constraints,
    // context, pool) that outlive the task group — never at this engine,
    // so a stray probe draining after the frame (or the engine) is gone
    // is harmless.
    const ConstraintSet* constraints = &constraints_;
    const std::vector<Bitset>* target_bitmap = &context_.target_bitmap;
    BitsetPool* pool = probe_pool_;
    size_t last = std::min(candidates->size() - 1, kMaxProbesPerFrame);
    for (size_t index = 1; index <= last; ++index) {
      auto verdict = std::make_shared<std::atomic<int>>(
          static_cast<int>(Verdict::kPending));
      uint64_t ticket = probe_group_->Submit(
          [snapshot, candidates, index, verdict, constraints, target_bitmap,
           pool] {
            BitsetPool::Lease lease = pool->Acquire();
            SnapshotView view{snapshot.get(), &*lease};
            std::vector<uint64_t> delta(constraints->size(), 0);
            Verdict v = ValidateCandidate(
                (*candidates)[index], *constraints, *target_bitmap,
                /*forward_check=*/true, view, nullptr, nullptr, &delta);
            verdict->store(static_cast<int>(v), std::memory_order_release);
          });
      frame->slots.emplace_back(index, std::move(verdict));
      frame->tickets.push_back(ticket);
      DIVA_COUNTER_ADD_EXEC("coloring.spec_probes", 1);
    }
  }

  /// Retracts the frame's probes nobody started; in-flight ones finish
  /// into verdict cells nobody will read.
  void AbandonProbes(ProbeFrame* frame) {
    if (frame->group == nullptr) return;
    for (uint64_t ticket : frame->tickets) frame->group->TryAbandon(ticket);
  }

  /// Candidate clusterings of `node` under the current partial coloring,
  /// already in trial order with their static facts prepared. The result
  /// is a pure function of (free target set, deficit, headroom) — the
  /// enumeration seed is fixed per node and the least-constraining
  /// ordering reads only static target bitmaps — so backtracking
  /// re-visits replay the memo instead of re-enumerating. No engine RNG
  /// is consumed here, which is why the search tree is identical with the
  /// memo on or off.
  CandidateList CandidatesFor(size_t node) {
    const DiversityConstraint& constraint = constraints_[node];
    uint64_t have = preserved_[node];
    // Occurrences already preserved by neighbors' clusters count toward
    // the lower bound; no deficit means the empty clustering suffices
    // (and claiming more rows can only restrict other nodes).
    if (have >= constraint.lower()) {
      return trivial_candidates_;
    }
    size_t deficit = constraint.lower() - static_cast<size_t>(have);
    size_t headroom = constraint.upper() - static_cast<size_t>(have);

    // Structurally dead node: no preserved-count in [deficit, headroom]
    // is even representable over the remaining free targets. O(1) via
    // the incremental free count — skip the enumeration AND the memo
    // (no point spending an entry on a node that cannot be colored).
    if (EnumerationIsTriviallyEmpty(static_cast<size_t>(free_count_[node]),
                                    options_.k, deficit, headroom)) {
      return empty_candidates_;
    }

    MemoKey key{claimed_fp_[node], deficit, headroom};
    if (options_.memo) {
      auto it = memo_[node].find(key);
      if (it != memo_[node].end()) {
        DIVA_COUNTER_ADD("coloring.memo_hits", 1);
        return it->second;
      }
      DIVA_COUNTER_ADD("coloring.memo_misses", 1);
    }

    // The free targets, in QI-similarity order: filtering the hoisted
    // per-constraint order by the claimed bitset is exactly the order a
    // fresh SortByQiSimilarity of the free subset would produce.
    std::vector<RowId> free_targets;
    free_targets.reserve(static_cast<size_t>(free_count_[node]));
    for (RowId row : context_.sorted_targets[node]) {
      if (!claimed_.Test(row)) free_targets.push_back(row);
    }

    ClusteringEnumOptions enumeration = options_.enumeration;
    enumeration.seed = options_.seed * 1000003ULL + node;
    std::vector<CandidateClustering> enumerated = EnumerateClusteringsQiSorted(
        relation_, free_targets, options_.k, deficit, headroom, enumeration);
    if (options_.strategy != SelectionStrategy::kBasic) {
      OrderLeastConstrainingFirst(node, &enumerated);
    }
    CandidateList candidates = Prepare(std::move(enumerated));

    if (options_.memo) {
      if (memo_entries_ >= options_.memo_capacity) {
        // Epoch eviction: drop everything rather than track recency; the
        // next few visits repopulate the hot keys.
        DIVA_COUNTER_ADD("coloring.memo_evictions", memo_entries_);
        for (Memo& memo : memo_) memo.clear();
        memo_entries_ = 0;
      }
      memo_[node].emplace(key, candidates);
      ++memo_entries_;
    }
    return candidates;
  }

  /// Precomputes the static facts of each enumerated candidate (sorted
  /// rows, fingerprint, sparse contributions) so every later trial — and
  /// every memo replay — skips straight to the dynamic checks.
  CandidateList Prepare(std::vector<CandidateClustering>&& enumerated) {
    auto prepared = std::make_shared<std::vector<PreparedCandidate>>();
    prepared->reserve(enumerated.size());
    for (CandidateClustering& candidate : enumerated) {
      PreparedCandidate out;
      out.preserved = candidate.preserved;
      out.clusters.reserve(candidate.clusters.size());
      for (Cluster& cluster : candidate.clusters) {
        PreparedCluster entry;
        entry.rows = std::move(cluster);
        std::sort(entry.rows.begin(), entry.rows.end());
        entry.fingerprint = FingerprintOf(entry.rows);
        // Per-constraint overlap in one incidence pass; full containment
        // (|overlap| == |cluster|) is the only way a cluster preserves
        // occurrences for constraint j.
        std::fill(in_target_scratch_.begin(), in_target_scratch_.end(), 0);
        for (RowId row : entry.rows) {
          for (uint32_t j : context_.incidence[row]) ++in_target_scratch_[j];
        }
        for (size_t j = 0; j < constraints_.size(); ++j) {
          if (in_target_scratch_[j] == entry.rows.size()) {
            entry.contrib.emplace_back(static_cast<uint32_t>(j),
                                       entry.rows.size());
          }
        }
        out.clusters.push_back(std::move(entry));
      }
      prepared->push_back(std::move(out));
    }
    return prepared;
  }

  /// Least-constraining-value ordering for the selective strategies:
  /// among candidates preserving the same count, try the ones that WASTE
  /// the fewest shared rows first. A cluster row that lies in another
  /// constraint's target set is wasted when the cluster is not uniform on
  /// that target (the row is claimed but contributes nothing toward the
  /// other constraint's lower bound). (DIVA-Basic keeps its shuffled
  /// order.) Per-constraint overlap counts come from the incidence lists
  /// in one pass per cluster; a cluster fully inside target j contributes
  /// |cluster| there (zero waste), any partial overlap is pure waste.
  void OrderLeastConstrainingFirst(size_t node,
                                   std::vector<CandidateClustering>* candidates) {
    size_t n = constraints_.size();
    std::vector<std::pair<uint64_t, size_t>> keyed(candidates->size());
    for (size_t i = 0; i < candidates->size(); ++i) {
      uint64_t waste = 0;
      for (const Cluster& cluster : (*candidates)[i].clusters) {
        std::fill(in_target_scratch_.begin(), in_target_scratch_.end(), 0);
        for (RowId row : cluster) {
          for (uint32_t j : context_.incidence[row]) ++in_target_scratch_[j];
        }
        for (size_t j = 0; j < n; ++j) {
          if (j == node) continue;
          uint64_t in_target = in_target_scratch_[j];
          if (in_target != cluster.size()) waste += in_target;
        }
      }
      keyed[i] = {waste, i};
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const auto& a, const auto& b) {
                       size_t pa = (*candidates)[a.second].preserved;
                       size_t pb = (*candidates)[b.second].preserved;
                       if (pa != pb) return pa < pb;
                       return a.first < b.first;
                     });
    std::vector<CandidateClustering> ordered;
    ordered.reserve(candidates->size());
    for (const auto& [waste, index] : keyed) {
      ordered.push_back(std::move((*candidates)[index]));
    }
    *candidates = std::move(ordered);
  }

  /// Checks consistency of `candidate` against the current state and, if
  /// consistent, activates its clusters. `activated` receives the
  /// fingerprints of clusters whose refcount this call incremented. All
  /// static facts (sorted rows, fingerprints, contributions) arrive
  /// precomputed; only the dynamic checks — registry lookups, claimed-row
  /// disjointness, bounds, forward check — run per trial.
  /// ValidateCandidate view over the engine's own mutable state.
  struct LiveView {
    static constexpr bool kLive = true;
    ColoringEngine* e;

    bool IsActive(const PreparedCluster& cluster) const {
      auto it = e->registry_.find(cluster.fingerprint);
      if (it == e->registry_.end()) return false;
      // Fingerprint hit = identical row set (disjoint-or-equal makes a
      // real overlap-but-unequal cluster inadmissible anyway); a tag
      // collision would silently merge two clusters, so verify.
      DIVA_DCHECK(it->second.rows == cluster.rows);
      return true;
    }
    bool IsClaimed(RowId row) const { return e->claimed_.Test(row); }
    uint64_t Preserved(size_t j) const { return e->preserved_[j]; }
    bool Uncolored(size_t j) const { return e->assignment_[j] < 0; }
    uint64_t FreeCount(size_t j) const { return e->free_count_[j]; }
    Bitset& Scratch() { return e->fresh_scratch_; }
  };

  bool TryAssign(const PreparedCandidate& candidate,
                 std::vector<uint64_t>* activated) {
    // Phase 1: validate without mutating (shared with the speculative
    // probes, which run the same code against a snapshot view).
    std::vector<const PreparedCluster*> fresh;
    std::vector<uint64_t> reused;
    std::fill(delta_scratch_.begin(), delta_scratch_.end(), 0);
    LiveView view{this};
    Verdict verdict =
        ValidateCandidate(candidate, constraints_, context_.target_bitmap,
                          forward_check_, view, &fresh, &reused,
                          &delta_scratch_);
    if (verdict == Verdict::kFailForward) {
      DIVA_COUNTER_ADD("coloring.forward_check_fails", 1);
      return false;
    }
    if (verdict != Verdict::kPass) return false;

    // Phase 2: activate.
    for (const PreparedCluster* cluster : fresh) {
      for (RowId row : cluster->rows) ClaimRow(row);
      for (const auto& [j, count] : cluster->contrib) {
        preserved_[j] += count;
      }
      activated->push_back(cluster->fingerprint);
      registry_xor_ ^= MixBits(cluster->fingerprint);
      bool inserted =
          registry_
              .emplace(cluster->fingerprint,
                       ActiveCluster{cluster->rows, cluster->contrib, 1})
              .second;
      // A failed emplace means a fingerprint collision between two
      // distinct fresh clusters of one candidate — possible only through
      // a tag collision.
      DIVA_DCHECK(inserted);
      (void)inserted;
    }
    for (uint64_t fp : reused) {
      auto it = registry_.find(fp);
      // Always-on: ++end()->refcount is UB in release builds; the hash
      // lookup above dominates the cost of this branch.
      DIVA_CHECK_MSG(it != registry_.end(),
                     "coloring: reused cluster missing from registry");
      ++it->second.refcount;
      activated->push_back(fp);
    }
    return true;
  }

  void Unassign(size_t node, const std::vector<uint64_t>& activated) {
    assignment_[node] = -1;
    --colored_count_;
    for (uint64_t fp : activated) {
      auto it = registry_.find(fp);
      // Always-on for the same reason as Assign: end() deref is UB and a
      // zero refcount would wrap and leak the cluster forever.
      DIVA_CHECK_MSG(it != registry_.end() && it->second.refcount > 0,
                     "coloring: unassigned cluster missing from registry");
      if (--it->second.refcount == 0) {
        for (RowId row : it->second.rows) ReleaseRow(row);
        for (const auto& [j, count] : it->second.contrib) {
          preserved_[j] -= count;
        }
        registry_xor_ ^= MixBits(fp);
        registry_.erase(it);
      }
    }
  }

  size_t SelectNode() {
    // Exploration: with probability epsilon pick any uncolored node, so
    // restart attempts escape a wedged deterministic order.
    if (options_.epsilon > 0.0 &&
        rng_.UniformDouble() < options_.epsilon) {
      std::vector<size_t> open;
      for (size_t node = 0; node < constraints_.size(); ++node) {
        if (assignment_[node] < 0 && !sacrificed_.Test(node)) {
          open.push_back(node);
        }
      }
      if (!open.empty()) {
        return open[static_cast<size_t>(rng_.NextBounded(open.size()))];
      }
    }
    // Zero-deficit nodes (lower bound already covered by other clusters)
    // are free wins for the selective strategies: they color with the
    // empty clustering, claim nothing, and shrink the problem.
    if (options_.strategy != SelectionStrategy::kBasic) {
      for (size_t node = 0; node < constraints_.size(); ++node) {
        if (assignment_[node] < 0 && !sacrificed_.Test(node) &&
            preserved_[node] >= constraints_[node].lower()) {
          return node;
        }
      }
    }
    switch (options_.strategy) {
      case SelectionStrategy::kBasic: {
        for (size_t node : basic_order_) {
          if (assignment_[node] < 0 && !sacrificed_.Test(node)) return node;
        }
        break;
      }
      case SelectionStrategy::kMinChoice: {
        // Most restrictive first. Proxy for the number of admissible
        // clusterings: the node's slack — how many spare free target
        // rows remain beyond its deficit (fewer spare rows, fewer
        // distinct subsets to choose from). Nodes whose deficit already
        // exceeds their free rows have zero clusterings and are picked
        // immediately (fail first).
        size_t best = constraints_.size();
        uint64_t best_slack = std::numeric_limits<uint64_t>::max();
        for (size_t node = 0; node < constraints_.size(); ++node) {
          if (assignment_[node] >= 0 || sacrificed_.Test(node)) continue;
          uint64_t lower = constraints_[node].lower();
          uint64_t deficit =
              lower > preserved_[node] ? lower - preserved_[node] : 0;
          uint64_t slack = free_count_[node] > deficit
                               ? free_count_[node] - deficit
                               : 0;
          if (free_count_[node] < deficit) slack = 0;  // fail first
          if (slack < best_slack) {
            best_slack = slack;
            best = node;
            ties_ = 1;
          } else if (slack == best_slack &&
                     rng_.NextBounded(++ties_) == 0) {
            best = node;  // random tie-break for restart diversity
          }
        }
        if (best < constraints_.size()) return best;
        break;
      }
      case SelectionStrategy::kMaxFanOut: {
        // Most interacting first (the paper's description); fanout ties
        // break randomly so restarts explore different orders.
        size_t best = constraints_.size();
        size_t best_fanout = 0;
        for (size_t node = 0; node < constraints_.size(); ++node) {
          if (assignment_[node] >= 0 || sacrificed_.Test(node)) continue;
          size_t fanout = 0;
          for (size_t neighbor : graph_.adjacency[node]) {
            if (assignment_[neighbor] < 0) ++fanout;
          }
          if (best == constraints_.size() || fanout > best_fanout) {
            best_fanout = fanout;
            best = node;
            ties_ = 1;
          } else if (fanout == best_fanout &&
                     rng_.NextBounded(++ties_) == 0) {
            best = node;  // random tie-break for restart diversity
          }
        }
        if (best < constraints_.size()) return best;
        break;
      }
    }
    // Fallback: first uncolored.
    for (size_t node = 0; node < constraints_.size(); ++node) {
      if (assignment_[node] < 0 && !sacrificed_.Test(node)) return node;
    }
    DIVA_CHECK_MSG(false, "SelectNode called with all nodes colored");
    return 0;
  }

  void SnapshotIfBetter() {
    if (best_colored_ != kNoSnapshot && colored_count_ <= best_colored_) {
      return;
    }
    best_colored_ = colored_count_;
    last_improvement_ = steps_;
    outcome_.assignment = assignment_;
    outcome_.preserved.assign(preserved_.begin(), preserved_.end());
    outcome_.chosen_clusters.clear();
    for (const auto& [fp, entry] : registry_) {
      outcome_.chosen_clusters.push_back(entry.rows);
    }
    // Canonical order: active clusters are pairwise disjoint, so their
    // smallest row ids are distinct and sorting by them is a strict total
    // order — the snapshot no longer inherits hash-map iteration order.
    std::sort(outcome_.chosen_clusters.begin(),
              outcome_.chosen_clusters.end(),
              [](const std::vector<RowId>& a, const std::vector<RowId>& b) {
                return a.front() < b.front();
              });
  }

  static constexpr size_t kNoSnapshot = std::numeric_limits<size_t>::max();

  const Relation& relation_;
  const ConstraintSet& constraints_;
  const ConstraintGraph& graph_;
  const SearchContext& context_;
  ColoringOptions options_;
  bool forward_check_;
  Rng rng_;

  std::vector<int> assignment_;
  Bitset sacrificed_;
  size_t sacrificed_count_ = 0;
  std::vector<uint64_t> preserved_;
  std::vector<size_t> basic_order_;
  std::vector<uint64_t> free_count_;  // unclaimed target rows per constraint
  std::vector<uint64_t> claimed_fp_;  // fingerprint of claimed ∩ targets[j]
  size_t colored_count_ = 0;

  Registry registry_;  // active clusters only
  Bitset claimed_;     // rows owned by an active cluster
  Bitset fresh_scratch_;
  std::vector<uint64_t> in_target_scratch_;
  std::vector<uint64_t> delta_scratch_;
  CandidateList trivial_candidates_;

  std::vector<Memo> memo_;  // per node
  size_t memo_entries_ = 0;

  /// XOR of MixBits(fingerprint) over the active clusters — an O(1)
  /// summary of the cluster partition for the nogood key.
  uint64_t registry_xor_ = 0;
  bool nogood_enabled_ = false;
  std::unordered_map<uint64_t, NogoodRec> nogood_;
  NogoodLog nogood_log_;
  CandidateList empty_candidates_;

  TaskGroup* probe_group_ = nullptr;
  BitsetPool* probe_pool_ = nullptr;
  static constexpr size_t kMaxProbesPerFrame = 4;

  uint64_t steps_ = 0;
  uint64_t backtracks_ = 0;
  uint64_t last_improvement_ = 0;
  uint64_t ties_ = 1;  // scratch for random tie-breaking
  bool budget_exhausted_ = false;
  size_t best_colored_ = kNoSnapshot;

  ColoringOutcome outcome_;

 public:
  using MemoTable = std::vector<Memo>;

  /// Moves the engine's candidate memo out (leaving it empty), for
  /// handoff to another engine with the same per-node enumeration seeds.
  MemoTable ExportMemo() {
    MemoTable table = std::move(memo_);
    memo_.clear();
    memo_.resize(constraints_.size());
    memo_entries_ = 0;
    return table;
  }

  /// Adopts a memo exported by a compatible engine. Memo entries are a
  /// pure function of (node, enumeration seed, claimed-fingerprint key),
  /// so this is sound exactly when both engines derive the same per-node
  /// enumeration seed — the driver only wires attempt 0 to the greedy
  /// pass, which share options.seed.
  void ImportMemo(MemoTable table) {
    DIVA_CHECK_MSG(table.size() == constraints_.size(),
                   "memo table from an engine over a different graph");
    memo_ = std::move(table);
    memo_entries_ = 0;
    for (const Memo& m : memo_) memo_entries_ += m.size();
  }

  /// Self-learned nogoods in insertion order, for attempt-boundary
  /// publication under share_nogoods.
  const NogoodLog& PublishedNogoods() const { return nogood_log_; }

  /// Seeds published entries from earlier attempts into the lookup
  /// table, first-wins per key, up to capacity. Seeded entries are
  /// deterministic but lossy prunes: the per-attempt enumeration seed
  /// differs, so a subtree dead in the publishing attempt may have been
  /// live here — trading completeness for speed, identically at every
  /// thread width (seeding happens at sequential attempt boundaries).
  void SeedNogoods(const NogoodLog& entries) {
    if (!nogood_enabled_) return;
    for (const auto& [key, rec] : entries) {
      if (nogood_.size() >= options_.nogood_capacity) break;
      NogoodRec seeded = rec;
      seeded.seeded = true;
      nogood_.emplace(key, std::move(seeded));
    }
  }

  /// Wires the engine to a task group + scratch pool for sibling
  /// candidate probes. Probes are semantically invisible (verdicts are
  /// DCHECK-verified against inline validation), so this never changes
  /// the outcome — only wall time.
  void EnableProbes(TaskGroup* group, BitsetPool* pool) {
    probe_group_ = group;
    probe_pool_ = pool;
  }

  /// Re-enables nogood learning for a speculative engine whose
  /// options.cancel is the driver's speculation flag. Sound because the
  /// driver only adopts runs that finished before the flag was ever
  /// raised (a run observed cancel==false at every poll, so it is
  /// byte-identical to an uncancellable run); discarded runs do not
  /// contribute state or counters.
  void ForceNogoodLearning() { nogood_enabled_ = options_.nogood; }
};

}  // namespace

ColoringOutcome ColorConstraints(const Relation& relation,
                                 const ConstraintSet& constraints,
                                 const ConstraintGraph& graph,
                                 const ColoringOptions& options) {
  DIVA_CHECK_MSG(graph.targets.size() == constraints.size(),
                 "graph must be built from the same constraint set");
  // Bitmaps, QI-sorted target orders, incidence lists, and row tags are
  // pure functions of (relation, graph): build them once and share across
  // every restart attempt and the greedy pass.
  SearchContext context(relation, graph);
  // Strict passes (lower-bound forward checking) with randomized
  // restarts: complete colorings are typically found within a few dozen
  // steps of a good ordering, so several cheap diversified attempts beat
  // one long chronological-backtracking grind.
  uint64_t budget = options.step_budget;
  uint64_t strict_budget = std::max<uint64_t>(1, budget / 2);
  uint64_t spent = 0;
  ColoringOutcome best;
  best.assignment.assign(constraints.size(), -1);
  best.preserved.assign(constraints.size(), 0);

  constexpr int kMaxAttempts = 8;
  auto attempt_options = [&](int attempt) {
    ColoringOptions pass = options;
    pass.seed = options.seed + 0x9e3779b97f4a7c15ULL * attempt;
    pass.epsilon = 0.15 * attempt;  // attempt 0 is the pure strategy
    if (attempt > 0 && pass.stall_limit > 0) {
      // Diversification probes either win quickly or not at all; keep
      // them cheap so eight attempts stay affordable.
      pass.stall_limit = std::max<uint64_t>(500, options.stall_limit / 4);
    }
    return pass;
  };

  // Speculative search runs every restart attempt ahead on idle threads
  // and adopts results in attempt order, each only when provably
  // identical to the sequential schedule (see the adoption rule below).
  // Disabled when the attempts are coupled (share_nogoods serializes
  // them) or externally cancellable (a truncated run is
  // scheduling-dependent by nature, so nothing speculative could ever be
  // adopted deterministically).
  const bool speculate = options.speculation && !options.share_nogoods &&
                         options.cancel == nullptr &&
                         !options.deadline.CanBeCancelled();
  size_t workers = 0;
  if (speculate) {
    size_t threads = ParallelThreads();
    // The main thread adopts and re-runs; attempts beyond the first are
    // speculative, so more workers than remaining attempts is waste.
    workers = threads > 1
                  ? std::min<size_t>(threads - 1, kMaxAttempts - 1)
                  : 0;
  }
  std::atomic<bool> spec_cancel{false};
  struct Slot {
    std::unique_ptr<ColoringEngine> engine;
    ColoringOutcome outcome;
    counters::Buffer buffer;
    trace::SpanBuffer spans;
    uint64_t ticket = 0;
  };
  std::vector<Slot> slots(kMaxAttempts);
  BitsetPool scratch_pool(relation.NumRows());
  // Declared after everything its workers touch (context, slots, pool):
  // the group's destructor joins in-flight losers before any of it dies.
  TaskGroup group(workers);

  // Runs attempt `attempt` inline on this thread under the exact
  // sequential budget, keeping the engine alive in its slot (attempt 0's
  // memo feeds the greedy pass).
  auto run_inline = [&](int attempt, uint64_t pass_budget,
                        const ColoringEngine::NogoodLog* seed_nogoods) {
    ColoringOptions pass = attempt_options(attempt);
    pass.step_budget = pass_budget;
    Slot& slot = slots[attempt];
    slot.engine = std::make_unique<ColoringEngine>(
        relation, constraints, graph, context, pass, /*forward_check=*/true);
    if (seed_nogoods != nullptr) slot.engine->SeedNogoods(*seed_nogoods);
    if (workers > 0) slot.engine->EnableProbes(&group, &scratch_pool);
    slot.outcome = slot.engine->Run();
  };

  if (workers > 0) {
    // Launch all attempts with the full strict budget; adoption decides
    // per attempt whether the speculative run matches what the
    // sequential budget would have produced.
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Slot* slot = &slots[attempt];
      ColoringOptions pass = attempt_options(attempt);
      pass.step_budget = strict_budget;
      pass.cancel = &spec_cancel;
      slot->ticket = group.Submit([slot, pass, &relation, &constraints,
                                   &graph, &context, &group, &scratch_pool] {
        // Deterministic-scope counters and trace spans go into the
        // slot's buffers and are committed only if this run is adopted —
        // the global totals and the captured trace see exactly the
        // sequential schedule's work, in adoption order.
        counters::ScopedBufferedCounters buffered(&slot->buffer);
        trace::ScopedBufferedSpans span_scope(&slot->spans);
        slot->engine = std::make_unique<ColoringEngine>(
            relation, constraints, graph, context, pass,
            /*forward_check=*/true);
        // pass.cancel is only raised after the adoption loop, so any
        // adoptable run was never actually cancellable (see
        // ForceNogoodLearning).
        slot->engine->ForceNogoodLearning();
        slot->engine->EnableProbes(&group, &scratch_pool);
        slot->outcome = slot->engine->Run();
      });
    }
    bool complete = false;
    for (int attempt = 0; spent < strict_budget && attempt < kMaxAttempts;
         ++attempt) {
      DIVA_TRACE_SPAN_RANGE("coloring/attempt", attempt, attempt + 1);
      DIVA_COUNTER_ADD("coloring.attempts", 1);
      uint64_t b = strict_budget - spent;
      Slot& slot = slots[attempt];
      if (group.TryAbandon(slot.ticket)) {
        // Never started: run it here, exactly as the sequential schedule
        // would.
        run_inline(attempt, b, nullptr);
      } else {
        group.Wait(slot.ticket);
        // Adoption rule: the speculative run used budget strict_budget;
        // the sequential schedule would have used b <= strict_budget.
        // The step counter is monotone and the budget check trips only
        // at steps > limit, so a run that finished within b steps never
        // saw a check the sequential run would have failed — its whole
        // trajectory, outcome, and counter deltas are byte-identical.
        // (b == strict_budget means the budgets agree outright.)
        if (slot.outcome.steps <= b || b == strict_budget) {
          slot.buffer.Commit();
          slot.spans.Commit();
          DIVA_COUNTER_ADD_EXEC("coloring.spec_adopted", 1);
        } else {
          // Overran the sequential budget: discard and re-run inline
          // under the exact budget.
          slot.buffer.Discard();
          slot.spans.Discard();
          DIVA_COUNTER_ADD_EXEC("coloring.spec_reruns", 1);
          run_inline(attempt, b, nullptr);
        }
      }
      ColoringOutcome outcome = std::move(slot.outcome);
      spent += outcome.steps;
      if (outcome.NumColored() > best.NumColored()) {
        uint64_t steps_so_far = spent;
        best = std::move(outcome);
        best.steps = steps_so_far;
      }
      if (best.complete) {
        complete = true;
        break;
      }
    }
    spec_cancel.store(true, std::memory_order_relaxed);
    group.AbandonAll();
    if (complete) return best;
  } else {
    // Sequential attempt schedule — the reference semantics speculation
    // reproduces. share_nogoods lives here: each attempt publishes its
    // learned table at its end (a deterministic sequence point) and
    // seeds every later attempt, first key wins.
    ColoringEngine::NogoodLog shared_nogoods;
    std::unordered_set<uint64_t> shared_keys;
    for (int attempt = 0; spent < strict_budget && attempt < kMaxAttempts &&
                          !options.deadline.Cancelled();
         ++attempt) {
      DIVA_TRACE_SPAN_RANGE("coloring/attempt", attempt, attempt + 1);
      DIVA_COUNTER_ADD("coloring.attempts", 1);
      run_inline(attempt, strict_budget - spent,
                 options.share_nogoods && attempt > 0 ? &shared_nogoods
                                                      : nullptr);
      Slot& slot = slots[attempt];
      if (options.share_nogoods) {
        for (const auto& [key, rec] : slot.engine->PublishedNogoods()) {
          if (shared_keys.insert(key).second) {
            shared_nogoods.emplace_back(key, rec);
          }
        }
      }
      ColoringOutcome outcome = std::move(slot.outcome);
      spent += outcome.steps;
      if (outcome.NumColored() > best.NumColored()) {
        uint64_t steps_so_far = spent;
        best = std::move(outcome);
        best.steps = steps_so_far;
      }
      if (best.complete) return best;
      if (attempt != 0) slot.engine.reset();
    }
  }

  // An expired deadline skips the greedy pass: what we have is the
  // anytime answer, flagged through the budget-exhaustion path.
  if (options.deadline.Cancelled()) {
    best.steps = spent;
    best.budget_exhausted = true;
    return best;
  }

  // Final greedy pass — no forward checking, so the search colors as many
  // nodes as it can even when some constraint is provably unsatisfiable.
  ColoringOptions second = options;
  second.step_budget = budget > spent ? budget - spent : 1;
  second.epsilon = 0.1;
  DIVA_TRACE_SPAN("coloring/greedy");
  ColoringEngine greedy(relation, constraints, graph, context, second,
                        /*forward_check=*/false);
  // Attempt 0 and the greedy pass derive identical per-node enumeration
  // seeds from options.seed, so attempt 0's memo is directly reusable —
  // the memo is semantically transparent, so this changes no outcome,
  // only enumeration time. (Shared nogoods are NOT handed over: they
  // were learned under forward checking and are unsound without it.)
  if (options.share_memo && slots[0].engine != nullptr) {
    greedy.ImportMemo(slots[0].engine->ExportMemo());
  }
  ColoringOutcome fallback = greedy.Run();
  fallback.steps += spent;
  if (fallback.complete || fallback.NumColored() > best.NumColored()) {
    return fallback;
  }
  best.steps = fallback.steps;
  best.backtracks += fallback.backtracks;
  return best;
}

ColoringOutcome ColorConstraintsPortfolio(const Relation& relation,
                                          const ConstraintSet& constraints,
                                          const ConstraintGraph& graph,
                                          const ColoringOptions& options,
                                          size_t threads) {
  if (threads <= 1) {
    return ColorConstraints(relation, constraints, graph, options);
  }
  std::atomic<bool> cancel{false};
  std::vector<ColoringOutcome> outcomes(threads);
  // Coarse task parallelism (not a fork-join loop): each speculative
  // search is free to use the data-parallel layer internally.
  RunTasks(threads, [&](size_t t) {
    ColoringOptions worker_options = options;
    worker_options.seed = options.seed + 0x51ed270b7a14ULL * t;
    worker_options.cancel = &cancel;
    outcomes[t] =
        ColorConstraints(relation, constraints, graph, worker_options);
    if (outcomes[t].complete) {
      cancel.store(true, std::memory_order_relaxed);
    }
  });

  size_t best = 0;
  for (size_t t = 1; t < threads; ++t) {
    bool better =
        (outcomes[t].complete && !outcomes[best].complete) ||
        (outcomes[t].complete == outcomes[best].complete &&
         outcomes[t].NumColored() > outcomes[best].NumColored());
    if (better) best = t;
  }
  // Aggregate search effort across the portfolio for reporting.
  uint64_t steps = 0;
  uint64_t backtracks = 0;
  for (const ColoringOutcome& outcome : outcomes) {
    steps += outcome.steps;
    backtracks += outcome.backtracks;
  }
  ColoringOutcome winner = std::move(outcomes[best]);
  winner.steps = steps;
  winner.backtracks = backtracks;
  return winner;
}

}  // namespace diva
