#include "core/coloring.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/bitset.h"
#include "common/counters.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/trace.h"

namespace diva {

const char* SelectionStrategyToString(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kBasic:
      return "Basic";
    case SelectionStrategy::kMinChoice:
      return "MinChoice";
    case SelectionStrategy::kMaxFanOut:
      return "MaxFanOut";
  }
  return "unknown";
}

namespace {

/// Immutable search state shared by every engine one ColorConstraints
/// call spawns (all restart attempts plus the greedy pass): packed target
/// bitmaps, the hoisted QI-similarity target orders, the row->constraint
/// incidence lists that drive O(incidence) bookkeeping updates, and the
/// row tag table behind every set fingerprint.
struct SearchContext {
  SearchContext(const Relation& relation, const ConstraintGraph& graph) {
    size_t n = graph.NumNodes();
    size_t num_rows = relation.NumRows();
    target_bitmap.resize(n);
    incidence.resize(num_rows);
    for (size_t j = 0; j < n; ++j) {
      target_bitmap[j].Resize(num_rows);
      for (RowId row : graph.targets[j]) {
        target_bitmap[j].Set(row);
        incidence[row].push_back(static_cast<uint32_t>(j));
      }
    }
    // One stable_sort per constraint, once, in parallel — CandidatesFor
    // used to redo this sort on every node visit. Filtering these orders
    // by the claimed bitset reproduces a fresh sort of the free subset
    // exactly, because SortByQiSimilarity's comparator is a strict total
    // order independent of which rows are present.
    sorted_targets = ParallelMap<std::vector<RowId>>(
        n, /*grain=*/1, [&](size_t j) {
          return SortByQiSimilarity(relation, graph.targets[j]);
        });
    DIVA_COUNTER_ADD("coloring.target_sorts", n);
    if (graph.row_tags.size() >= num_rows) {
      row_tags = graph.row_tags;
    } else {
      // Hand-built graph (tests construct these): regenerate the same
      // fixed-seed tags BuildConstraintGraph would have stored.
      row_tags = MakeRowTags(num_rows);
    }
  }

  std::vector<Bitset> target_bitmap;
  std::vector<std::vector<uint32_t>> incidence;
  std::vector<std::vector<RowId>> sorted_targets;
  std::vector<uint64_t> row_tags;
};

/// Backtracking engine implementing Algorithm 4 with dynamic candidate
/// enumeration: a node's clusterings are built from the target rows not
/// yet claimed by any chosen cluster, sized to the constraint's
/// *remaining* lower-bound deficit (occurrences preserved by other
/// constraints' clusters count). Disjoint-or-equal is enforced through a
/// claimed-row bitset; upper bounds through incremental per-constraint
/// preserved-count totals. Active clusters and candidate memo entries are
/// keyed by XOR-of-row-tag fingerprints that update in O(1) per row.
class ColoringEngine {
 public:
  ColoringEngine(const Relation& relation, const ConstraintSet& constraints,
                 const ConstraintGraph& graph, const SearchContext& context,
                 const ColoringOptions& options, bool forward_check)
      : relation_(relation),
        constraints_(constraints),
        graph_(graph),
        context_(context),
        options_(options),
        forward_check_(forward_check),
        rng_(options.seed) {
    size_t n = constraints.size();
    assignment_.assign(n, -1);
    sacrificed_.Resize(n);
    preserved_.assign(n, 0);
    basic_order_.resize(n);
    for (size_t i = 0; i < n; ++i) basic_order_[i] = i;
    if (options.strategy == SelectionStrategy::kBasic) {
      rng_.Shuffle(&basic_order_);
    }
    free_count_.resize(n);
    for (size_t j = 0; j < n; ++j) {
      free_count_[j] = graph.targets[j].size();
    }
    claimed_fp_.assign(n, 0);
    in_target_scratch_.assign(n, 0);
    delta_scratch_.assign(n, 0);
    // The single empty clustering handed to zero-deficit nodes — shared
    // so the hot "lower bound already met" path allocates nothing.
    trivial_candidates_ =
        std::make_shared<const std::vector<PreparedCandidate>>(1);
    claimed_.Resize(relation.NumRows());
    fresh_scratch_.Resize(relation.NumRows());
    memo_.resize(n);
    outcome_.assignment.assign(n, -1);
    outcome_.preserved.assign(n, 0);
  }

  ColoringOutcome Run() {
    SnapshotIfBetter();
    bool finished = Color();
    outcome_.complete = finished && sacrificed_count_ == 0;
    outcome_.steps = steps_;
    outcome_.backtracks = backtracks_;
    outcome_.budget_exhausted = budget_exhausted_;
    return std::move(outcome_);
  }

 private:
  /// Per-(j, count) preserved contributions of one cluster: constraint j
  /// gains `count` (= |cluster|) iff the cluster lies entirely inside j's
  /// target set. Static facts, so they are computed once per enumerated
  /// cluster and reused on every trial and memo replay.
  using SparseContrib = std::vector<std::pair<uint32_t, uint64_t>>;

  struct ActiveCluster {
    std::vector<RowId> rows;  // sorted ascending; the identity
    SparseContrib contrib;
    int refcount = 0;
  };
  /// Keyed by the cluster's row-set fingerprint; `rows` inside the entry
  /// is the collision oracle (checked under DCHECK on every hit).
  using Registry = std::unordered_map<uint64_t, ActiveCluster>;

  /// An enumerated cluster with its static derived facts precomputed:
  /// rows sorted ascending, the XOR-of-tags fingerprint, and the sparse
  /// contribution list. TryAssign consumes these directly instead of
  /// re-sorting/re-hashing/re-counting per search step.
  struct PreparedCluster {
    uint64_t fingerprint = 0;
    std::vector<RowId> rows;
    SparseContrib contrib;
  };
  struct PreparedCandidate {
    size_t preserved = 0;
    std::vector<PreparedCluster> clusters;
  };
  using CandidateList = std::shared_ptr<const std::vector<PreparedCandidate>>;

  struct MemoKey {
    uint64_t fingerprint;  // claimed rows restricted to the node's targets
    uint64_t deficit;
    uint64_t headroom;
    bool operator==(const MemoKey& other) const {
      return fingerprint == other.fingerprint && deficit == other.deficit &&
             headroom == other.headroom;
    }
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey& key) const {
      uint64_t h = key.fingerprint;
      h ^= (key.deficit + 0x9e3779b97f4a7c15ULL) + (h << 6) + (h >> 2);
      h ^= (key.headroom + 0x9e3779b97f4a7c15ULL) + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  /// Memo values are shared immutable lists: a hit hands back a refcount
  /// bump, not a deep copy, and an epoch eviction during a recursive
  /// Color() call cannot pull a list out from under an outer stack frame
  /// still iterating it.
  using Memo = std::unordered_map<MemoKey, CandidateList, MemoKeyHash>;

  uint64_t FingerprintOf(const std::vector<RowId>& rows) const {
    uint64_t fp = 0;
    for (RowId row : rows) fp ^= context_.row_tags[row];
    return fp;
  }

  /// Claims `row` for an active cluster: O(#constraints targeting row)
  /// bookkeeping instead of a loop over every constraint.
  void ClaimRow(RowId row) {
    claimed_.Set(row);
    for (uint32_t j : context_.incidence[row]) {
      --free_count_[j];
      claimed_fp_[j] ^= context_.row_tags[row];
    }
  }

  void ReleaseRow(RowId row) {
    claimed_.Reset(row);
    for (uint32_t j : context_.incidence[row]) {
      ++free_count_[j];
      claimed_fp_[j] ^= context_.row_tags[row];
    }
  }

  bool Color() {
    if (colored_count_ + sacrificed_count_ == constraints_.size()) {
      return true;
    }
    // Poll the deadline before candidate enumeration too: CandidatesFor
    // can be expensive, and an expired run should not start another one.
    if (options_.deadline.Cancelled()) {
      budget_exhausted_ = true;
      return false;
    }
    size_t node = SelectNode();
    CandidateList candidates = CandidatesFor(node);
    if (!forward_check_ && candidates->empty()) {
      // Greedy mode: a node with no admissible clustering is sacrificed
      // (left uncolored) so the rest of Sigma can still be satisfied.
      sacrificed_.Set(node);
      ++sacrificed_count_;
      if (Color()) return true;
      sacrificed_.Reset(node);
      --sacrificed_count_;
      return false;
    }
    for (const PreparedCandidate& candidate : *candidates) {
      ++steps_;
      if (steps_ > options_.step_budget ||
          (options_.stall_limit > 0 &&
           steps_ - last_improvement_ > options_.stall_limit) ||
          (options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_relaxed)) ||
          options_.deadline.Cancelled()) {
        budget_exhausted_ = true;
        return false;
      }
      std::vector<uint64_t> activated;
      if (!TryAssign(candidate, &activated)) continue;
      assignment_[node] = static_cast<int>(candidate.preserved);
      ++colored_count_;
      SnapshotIfBetter();
      if (Color()) return true;
      Unassign(node, activated);
      ++backtracks_;
      if (budget_exhausted_) return false;
    }
    return false;
  }

  /// Candidate clusterings of `node` under the current partial coloring,
  /// already in trial order with their static facts prepared. The result
  /// is a pure function of (free target set, deficit, headroom) — the
  /// enumeration seed is fixed per node and the least-constraining
  /// ordering reads only static target bitmaps — so backtracking
  /// re-visits replay the memo instead of re-enumerating. No engine RNG
  /// is consumed here, which is why the search tree is identical with the
  /// memo on or off.
  CandidateList CandidatesFor(size_t node) {
    const DiversityConstraint& constraint = constraints_[node];
    uint64_t have = preserved_[node];
    // Occurrences already preserved by neighbors' clusters count toward
    // the lower bound; no deficit means the empty clustering suffices
    // (and claiming more rows can only restrict other nodes).
    if (have >= constraint.lower()) {
      return trivial_candidates_;
    }
    size_t deficit = constraint.lower() - static_cast<size_t>(have);
    size_t headroom = constraint.upper() - static_cast<size_t>(have);

    MemoKey key{claimed_fp_[node], deficit, headroom};
    if (options_.memo) {
      auto it = memo_[node].find(key);
      if (it != memo_[node].end()) {
        DIVA_COUNTER_ADD("coloring.memo_hits", 1);
        return it->second;
      }
      DIVA_COUNTER_ADD("coloring.memo_misses", 1);
    }

    // The free targets, in QI-similarity order: filtering the hoisted
    // per-constraint order by the claimed bitset is exactly the order a
    // fresh SortByQiSimilarity of the free subset would produce.
    std::vector<RowId> free_targets;
    free_targets.reserve(static_cast<size_t>(free_count_[node]));
    for (RowId row : context_.sorted_targets[node]) {
      if (!claimed_.Test(row)) free_targets.push_back(row);
    }

    ClusteringEnumOptions enumeration = options_.enumeration;
    enumeration.seed = options_.seed * 1000003ULL + node;
    std::vector<CandidateClustering> enumerated = EnumerateClusteringsQiSorted(
        relation_, free_targets, options_.k, deficit, headroom, enumeration);
    if (options_.strategy != SelectionStrategy::kBasic) {
      OrderLeastConstrainingFirst(node, &enumerated);
    }
    CandidateList candidates = Prepare(std::move(enumerated));

    if (options_.memo) {
      if (memo_entries_ >= options_.memo_capacity) {
        // Epoch eviction: drop everything rather than track recency; the
        // next few visits repopulate the hot keys.
        DIVA_COUNTER_ADD("coloring.memo_evictions", memo_entries_);
        for (Memo& memo : memo_) memo.clear();
        memo_entries_ = 0;
      }
      memo_[node].emplace(key, candidates);
      ++memo_entries_;
    }
    return candidates;
  }

  /// Precomputes the static facts of each enumerated candidate (sorted
  /// rows, fingerprint, sparse contributions) so every later trial — and
  /// every memo replay — skips straight to the dynamic checks.
  CandidateList Prepare(std::vector<CandidateClustering>&& enumerated) {
    auto prepared = std::make_shared<std::vector<PreparedCandidate>>();
    prepared->reserve(enumerated.size());
    for (CandidateClustering& candidate : enumerated) {
      PreparedCandidate out;
      out.preserved = candidate.preserved;
      out.clusters.reserve(candidate.clusters.size());
      for (Cluster& cluster : candidate.clusters) {
        PreparedCluster entry;
        entry.rows = std::move(cluster);
        std::sort(entry.rows.begin(), entry.rows.end());
        entry.fingerprint = FingerprintOf(entry.rows);
        // Per-constraint overlap in one incidence pass; full containment
        // (|overlap| == |cluster|) is the only way a cluster preserves
        // occurrences for constraint j.
        std::fill(in_target_scratch_.begin(), in_target_scratch_.end(), 0);
        for (RowId row : entry.rows) {
          for (uint32_t j : context_.incidence[row]) ++in_target_scratch_[j];
        }
        for (size_t j = 0; j < constraints_.size(); ++j) {
          if (in_target_scratch_[j] == entry.rows.size()) {
            entry.contrib.emplace_back(static_cast<uint32_t>(j),
                                       entry.rows.size());
          }
        }
        out.clusters.push_back(std::move(entry));
      }
      prepared->push_back(std::move(out));
    }
    return prepared;
  }

  /// Least-constraining-value ordering for the selective strategies:
  /// among candidates preserving the same count, try the ones that WASTE
  /// the fewest shared rows first. A cluster row that lies in another
  /// constraint's target set is wasted when the cluster is not uniform on
  /// that target (the row is claimed but contributes nothing toward the
  /// other constraint's lower bound). (DIVA-Basic keeps its shuffled
  /// order.) Per-constraint overlap counts come from the incidence lists
  /// in one pass per cluster; a cluster fully inside target j contributes
  /// |cluster| there (zero waste), any partial overlap is pure waste.
  void OrderLeastConstrainingFirst(size_t node,
                                   std::vector<CandidateClustering>* candidates) {
    size_t n = constraints_.size();
    std::vector<std::pair<uint64_t, size_t>> keyed(candidates->size());
    for (size_t i = 0; i < candidates->size(); ++i) {
      uint64_t waste = 0;
      for (const Cluster& cluster : (*candidates)[i].clusters) {
        std::fill(in_target_scratch_.begin(), in_target_scratch_.end(), 0);
        for (RowId row : cluster) {
          for (uint32_t j : context_.incidence[row]) ++in_target_scratch_[j];
        }
        for (size_t j = 0; j < n; ++j) {
          if (j == node) continue;
          uint64_t in_target = in_target_scratch_[j];
          if (in_target != cluster.size()) waste += in_target;
        }
      }
      keyed[i] = {waste, i};
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const auto& a, const auto& b) {
                       size_t pa = (*candidates)[a.second].preserved;
                       size_t pb = (*candidates)[b.second].preserved;
                       if (pa != pb) return pa < pb;
                       return a.first < b.first;
                     });
    std::vector<CandidateClustering> ordered;
    ordered.reserve(candidates->size());
    for (const auto& [waste, index] : keyed) {
      ordered.push_back(std::move((*candidates)[index]));
    }
    *candidates = std::move(ordered);
  }

  /// Checks consistency of `candidate` against the current state and, if
  /// consistent, activates its clusters. `activated` receives the
  /// fingerprints of clusters whose refcount this call incremented. All
  /// static facts (sorted rows, fingerprints, contributions) arrive
  /// precomputed; only the dynamic checks — registry lookups, claimed-row
  /// disjointness, bounds, forward check — run per trial.
  bool TryAssign(const PreparedCandidate& candidate,
                 std::vector<uint64_t>* activated) {
    // Phase 1: validate without mutating.
    size_t n = constraints_.size();
    std::vector<const PreparedCluster*> fresh;
    std::vector<uint64_t> reused;
    std::fill(delta_scratch_.begin(), delta_scratch_.end(), 0);
    for (const PreparedCluster& cluster : candidate.clusters) {
      auto it = registry_.find(cluster.fingerprint);
      if (it != registry_.end()) {
        // Fingerprint hit = identical row set (disjoint-or-equal makes a
        // real overlap-but-unequal cluster inadmissible anyway); a tag
        // collision would silently merge two clusters, so verify.
        DIVA_DCHECK(it->second.rows == cluster.rows);
        reused.push_back(cluster.fingerprint);
        continue;
      }
      // A new cluster may not touch any row owned by a different active
      // cluster (disjoint-or-equal condition).
      for (RowId row : cluster.rows) {
        if (claimed_.Test(row)) return false;
      }
      for (const auto& [j, count] : cluster.contrib) {
        delta_scratch_[j] += count;
      }
      fresh.push_back(&cluster);
    }
    // Upper-bound condition over every constraint (the paper checks
    // neighbors; non-neighbors have zero contribution, so checking all is
    // equivalent and simpler).
    for (size_t j = 0; j < n; ++j) {
      if (preserved_[j] + delta_scratch_[j] > constraints_[j].upper()) {
        return false;
      }
    }
    // Forward check: every still-uncolored constraint must be able to
    // reach its lower bound from its preserved total plus the target rows
    // that would remain free after this assignment. Fresh rows are marked
    // in a scratch bitset once, then each constraint's newly-claimed
    // count is one word-wise popcount kernel instead of per-row probes.
    // (Disabled in the greedy second pass, where partial colorings are
    // acceptable.)
    if (forward_check_) {
      for (const PreparedCluster* cluster : fresh) {
        for (RowId row : cluster->rows) fresh_scratch_.Set(row);
      }
      bool feasible = true;
      for (size_t j = 0; j < n && feasible; ++j) {
        if (assignment_[j] >= 0) continue;
        uint64_t claimed_j =
            Bitset::IntersectionCount(fresh_scratch_, context_.target_bitmap[j]);
        uint64_t reachable =
            preserved_[j] + delta_scratch_[j] + (free_count_[j] - claimed_j);
        if (reachable < constraints_[j].lower()) {
          DIVA_COUNTER_ADD("coloring.forward_check_fails", 1);
          if (std::getenv("DIVA_DEBUG_COLORING")) {
            // lint: allow-print — env-gated debug aid, off by default.
            std::fprintf(stderr,
                         "fwd-fail j=%zu lower=%u preserved=%llu delta=%llu "
                         "free=%llu claimed=%llu\n",
                         j, constraints_[j].lower(),
                         (unsigned long long)preserved_[j],
                         (unsigned long long)delta_scratch_[j],
                         (unsigned long long)free_count_[j],
                         (unsigned long long)claimed_j);
          }
          feasible = false;
        }
      }
      for (const PreparedCluster* cluster : fresh) {
        for (RowId row : cluster->rows) fresh_scratch_.Reset(row);
      }
      if (!feasible) return false;
    }

    // Phase 2: activate.
    for (const PreparedCluster* cluster : fresh) {
      for (RowId row : cluster->rows) ClaimRow(row);
      for (const auto& [j, count] : cluster->contrib) {
        preserved_[j] += count;
      }
      activated->push_back(cluster->fingerprint);
      bool inserted =
          registry_
              .emplace(cluster->fingerprint,
                       ActiveCluster{cluster->rows, cluster->contrib, 1})
              .second;
      // A failed emplace means a fingerprint collision between two
      // distinct fresh clusters of one candidate — possible only through
      // a tag collision.
      DIVA_DCHECK(inserted);
      (void)inserted;
    }
    for (uint64_t fp : reused) {
      auto it = registry_.find(fp);
      // Always-on: ++end()->refcount is UB in release builds; the hash
      // lookup above dominates the cost of this branch.
      DIVA_CHECK_MSG(it != registry_.end(),
                     "coloring: reused cluster missing from registry");
      ++it->second.refcount;
      activated->push_back(fp);
    }
    return true;
  }

  void Unassign(size_t node, const std::vector<uint64_t>& activated) {
    assignment_[node] = -1;
    --colored_count_;
    for (uint64_t fp : activated) {
      auto it = registry_.find(fp);
      // Always-on for the same reason as Assign: end() deref is UB and a
      // zero refcount would wrap and leak the cluster forever.
      DIVA_CHECK_MSG(it != registry_.end() && it->second.refcount > 0,
                     "coloring: unassigned cluster missing from registry");
      if (--it->second.refcount == 0) {
        for (RowId row : it->second.rows) ReleaseRow(row);
        for (const auto& [j, count] : it->second.contrib) {
          preserved_[j] -= count;
        }
        registry_.erase(it);
      }
    }
  }

  size_t SelectNode() {
    // Exploration: with probability epsilon pick any uncolored node, so
    // restart attempts escape a wedged deterministic order.
    if (options_.epsilon > 0.0 &&
        rng_.UniformDouble() < options_.epsilon) {
      std::vector<size_t> open;
      for (size_t node = 0; node < constraints_.size(); ++node) {
        if (assignment_[node] < 0 && !sacrificed_.Test(node)) {
          open.push_back(node);
        }
      }
      if (!open.empty()) {
        return open[static_cast<size_t>(rng_.NextBounded(open.size()))];
      }
    }
    // Zero-deficit nodes (lower bound already covered by other clusters)
    // are free wins for the selective strategies: they color with the
    // empty clustering, claim nothing, and shrink the problem.
    if (options_.strategy != SelectionStrategy::kBasic) {
      for (size_t node = 0; node < constraints_.size(); ++node) {
        if (assignment_[node] < 0 && !sacrificed_.Test(node) &&
            preserved_[node] >= constraints_[node].lower()) {
          return node;
        }
      }
    }
    switch (options_.strategy) {
      case SelectionStrategy::kBasic: {
        for (size_t node : basic_order_) {
          if (assignment_[node] < 0 && !sacrificed_.Test(node)) return node;
        }
        break;
      }
      case SelectionStrategy::kMinChoice: {
        // Most restrictive first. Proxy for the number of admissible
        // clusterings: the node's slack — how many spare free target
        // rows remain beyond its deficit (fewer spare rows, fewer
        // distinct subsets to choose from). Nodes whose deficit already
        // exceeds their free rows have zero clusterings and are picked
        // immediately (fail first).
        size_t best = constraints_.size();
        uint64_t best_slack = std::numeric_limits<uint64_t>::max();
        for (size_t node = 0; node < constraints_.size(); ++node) {
          if (assignment_[node] >= 0 || sacrificed_.Test(node)) continue;
          uint64_t lower = constraints_[node].lower();
          uint64_t deficit =
              lower > preserved_[node] ? lower - preserved_[node] : 0;
          uint64_t slack = free_count_[node] > deficit
                               ? free_count_[node] - deficit
                               : 0;
          if (free_count_[node] < deficit) slack = 0;  // fail first
          if (slack < best_slack) {
            best_slack = slack;
            best = node;
            ties_ = 1;
          } else if (slack == best_slack &&
                     rng_.NextBounded(++ties_) == 0) {
            best = node;  // random tie-break for restart diversity
          }
        }
        if (best < constraints_.size()) return best;
        break;
      }
      case SelectionStrategy::kMaxFanOut: {
        // Most interacting first (the paper's description); fanout ties
        // break randomly so restarts explore different orders.
        size_t best = constraints_.size();
        size_t best_fanout = 0;
        for (size_t node = 0; node < constraints_.size(); ++node) {
          if (assignment_[node] >= 0 || sacrificed_.Test(node)) continue;
          size_t fanout = 0;
          for (size_t neighbor : graph_.adjacency[node]) {
            if (assignment_[neighbor] < 0) ++fanout;
          }
          if (best == constraints_.size() || fanout > best_fanout) {
            best_fanout = fanout;
            best = node;
            ties_ = 1;
          } else if (fanout == best_fanout &&
                     rng_.NextBounded(++ties_) == 0) {
            best = node;  // random tie-break for restart diversity
          }
        }
        if (best < constraints_.size()) return best;
        break;
      }
    }
    // Fallback: first uncolored.
    for (size_t node = 0; node < constraints_.size(); ++node) {
      if (assignment_[node] < 0 && !sacrificed_.Test(node)) return node;
    }
    DIVA_CHECK_MSG(false, "SelectNode called with all nodes colored");
    return 0;
  }

  void SnapshotIfBetter() {
    if (best_colored_ != kNoSnapshot && colored_count_ <= best_colored_) {
      return;
    }
    best_colored_ = colored_count_;
    last_improvement_ = steps_;
    outcome_.assignment = assignment_;
    outcome_.preserved.assign(preserved_.begin(), preserved_.end());
    outcome_.chosen_clusters.clear();
    for (const auto& [fp, entry] : registry_) {
      outcome_.chosen_clusters.push_back(entry.rows);
    }
    // Canonical order: active clusters are pairwise disjoint, so their
    // smallest row ids are distinct and sorting by them is a strict total
    // order — the snapshot no longer inherits hash-map iteration order.
    std::sort(outcome_.chosen_clusters.begin(),
              outcome_.chosen_clusters.end(),
              [](const std::vector<RowId>& a, const std::vector<RowId>& b) {
                return a.front() < b.front();
              });
  }

  static constexpr size_t kNoSnapshot = std::numeric_limits<size_t>::max();

  const Relation& relation_;
  const ConstraintSet& constraints_;
  const ConstraintGraph& graph_;
  const SearchContext& context_;
  ColoringOptions options_;
  bool forward_check_;
  Rng rng_;

  std::vector<int> assignment_;
  Bitset sacrificed_;
  size_t sacrificed_count_ = 0;
  std::vector<uint64_t> preserved_;
  std::vector<size_t> basic_order_;
  std::vector<uint64_t> free_count_;  // unclaimed target rows per constraint
  std::vector<uint64_t> claimed_fp_;  // fingerprint of claimed ∩ targets[j]
  size_t colored_count_ = 0;

  Registry registry_;  // active clusters only
  Bitset claimed_;     // rows owned by an active cluster
  Bitset fresh_scratch_;
  std::vector<uint64_t> in_target_scratch_;
  std::vector<uint64_t> delta_scratch_;
  CandidateList trivial_candidates_;

  std::vector<Memo> memo_;  // per node
  size_t memo_entries_ = 0;

  uint64_t steps_ = 0;
  uint64_t backtracks_ = 0;
  uint64_t last_improvement_ = 0;
  uint64_t ties_ = 1;  // scratch for random tie-breaking
  bool budget_exhausted_ = false;
  size_t best_colored_ = kNoSnapshot;

  ColoringOutcome outcome_;
};

}  // namespace

ColoringOutcome ColorConstraints(const Relation& relation,
                                 const ConstraintSet& constraints,
                                 const ConstraintGraph& graph,
                                 const ColoringOptions& options) {
  DIVA_CHECK_MSG(graph.targets.size() == constraints.size(),
                 "graph must be built from the same constraint set");
  // Bitmaps, QI-sorted target orders, incidence lists, and row tags are
  // pure functions of (relation, graph): build them once and share across
  // every restart attempt and the greedy pass.
  SearchContext context(relation, graph);
  // Strict passes (lower-bound forward checking) with randomized
  // restarts: complete colorings are typically found within a few dozen
  // steps of a good ordering, so several cheap diversified attempts beat
  // one long chronological-backtracking grind.
  uint64_t budget = options.step_budget;
  uint64_t strict_budget = std::max<uint64_t>(1, budget / 2);
  uint64_t spent = 0;
  ColoringOutcome best;
  best.assignment.assign(constraints.size(), -1);
  best.preserved.assign(constraints.size(), 0);
  for (int attempt = 0;
       spent < strict_budget && attempt < 8 && !options.deadline.Cancelled();
       ++attempt) {
    DIVA_TRACE_SPAN_RANGE("coloring/attempt", attempt, attempt + 1);
    DIVA_COUNTER_ADD("coloring.attempts", 1);
    ColoringOptions pass = options;
    pass.seed = options.seed + 0x9e3779b97f4a7c15ULL * attempt;
    pass.step_budget = strict_budget - spent;
    pass.epsilon = 0.15 * attempt;  // attempt 0 is the pure strategy
    if (attempt > 0 && pass.stall_limit > 0) {
      // Diversification probes either win quickly or not at all; keep
      // them cheap so eight attempts stay affordable.
      pass.stall_limit = std::max<uint64_t>(500, options.stall_limit / 4);
    }
    ColoringEngine strict(relation, constraints, graph, context, pass,
                          /*forward_check=*/true);
    ColoringOutcome outcome = strict.Run();
    spent += outcome.steps;
    if (outcome.NumColored() > best.NumColored()) {
      uint64_t steps_so_far = spent;
      best = std::move(outcome);
      best.steps = steps_so_far;
    }
    if (best.complete) return best;
  }

  // An expired deadline skips the greedy pass: what we have is the
  // anytime answer, flagged through the budget-exhaustion path.
  if (options.deadline.Cancelled()) {
    best.steps = spent;
    best.budget_exhausted = true;
    return best;
  }

  // Final greedy pass — no forward checking, so the search colors as many
  // nodes as it can even when some constraint is provably unsatisfiable.
  ColoringOptions second = options;
  second.step_budget = budget > spent ? budget - spent : 1;
  second.epsilon = 0.1;
  DIVA_TRACE_SPAN("coloring/greedy");
  ColoringEngine greedy(relation, constraints, graph, context, second,
                        /*forward_check=*/false);
  ColoringOutcome fallback = greedy.Run();
  fallback.steps += spent;
  if (fallback.complete || fallback.NumColored() > best.NumColored()) {
    return fallback;
  }
  best.steps = fallback.steps;
  best.backtracks += fallback.backtracks;
  return best;
}

ColoringOutcome ColorConstraintsPortfolio(const Relation& relation,
                                          const ConstraintSet& constraints,
                                          const ConstraintGraph& graph,
                                          const ColoringOptions& options,
                                          size_t threads) {
  if (threads <= 1) {
    return ColorConstraints(relation, constraints, graph, options);
  }
  std::atomic<bool> cancel{false};
  std::vector<ColoringOutcome> outcomes(threads);
  // Coarse task parallelism (not a fork-join loop): each speculative
  // search is free to use the data-parallel layer internally.
  RunTasks(threads, [&](size_t t) {
    ColoringOptions worker_options = options;
    worker_options.seed = options.seed + 0x51ed270b7a14ULL * t;
    worker_options.cancel = &cancel;
    outcomes[t] =
        ColorConstraints(relation, constraints, graph, worker_options);
    if (outcomes[t].complete) {
      cancel.store(true, std::memory_order_relaxed);
    }
  });

  size_t best = 0;
  for (size_t t = 1; t < threads; ++t) {
    bool better =
        (outcomes[t].complete && !outcomes[best].complete) ||
        (outcomes[t].complete == outcomes[best].complete &&
         outcomes[t].NumColored() > outcomes[best].NumColored());
    if (better) best = t;
  }
  // Aggregate search effort across the portfolio for reporting.
  uint64_t steps = 0;
  uint64_t backtracks = 0;
  for (const ColoringOutcome& outcome : outcomes) {
    steps += outcome.steps;
    backtracks += outcome.backtracks;
  }
  ColoringOutcome winner = std::move(outcomes[best]);
  winner.steps = steps;
  winner.backtracks = backtracks;
  return winner;
}

}  // namespace diva
