#include "common/status.h"

namespace diva {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kBudgetExhausted:
      return "BudgetExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace diva
