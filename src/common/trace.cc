#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"

namespace diva {
namespace trace {

namespace internal {

std::atomic<bool> g_enabled{false};

/// Single-writer ring: the owning thread writes events_[size_] and then
/// release-stores the new size; readers acquire-load size_ and touch only
/// that prefix. Slots never move (the vector is sized once), so a
/// published slot is immutable from the reader's point of view.
struct ThreadBuffer {
  explicit ThreadBuffer(size_t capacity, uint32_t tid, uint64_t generation)
      : events(capacity), tid(tid), generation(generation) {}

  std::vector<SpanEvent> events;
  std::atomic<size_t> size{0};
  std::atomic<uint64_t> dropped{0};
  uint32_t tid = 0;
  uint64_t generation = 0;
  /// Capture start on the monotonic clock, copied under the registry
  /// mutex at registration so the writer thread never reads shared
  /// capture state on the span path.
  double capture_start_s = 0.0;
};

namespace {

constexpr size_t kDefaultRingCapacity = 65536;

Mutex g_registry_mutex;
std::vector<std::shared_ptr<ThreadBuffer>> g_buffers
    DIVA_GUARDED_BY(g_registry_mutex);
size_t g_ring_capacity DIVA_GUARDED_BY(g_registry_mutex) =
    kDefaultRingCapacity;
uint32_t g_next_tid DIVA_GUARDED_BY(g_registry_mutex) = 0;
double g_capture_start_s DIVA_GUARDED_BY(g_registry_mutex) = 0.0;

/// Bumped by Enable(); a thread whose cached buffer carries an older
/// generation re-registers. Relaxed reads are fine: a stale value only
/// sends events to a retired (never collected, still alive) buffer.
std::atomic<uint64_t> g_generation{0};

struct TlsState {
  std::shared_ptr<ThreadBuffer> buffer;
  uint32_t depth = 0;
};

TlsState& Tls() {
  thread_local TlsState state;
  return state;
}

}  // namespace

std::shared_ptr<ThreadBuffer> AcquireThreadBuffer() {
  TlsState& tls = Tls();
  uint64_t generation = g_generation.load(std::memory_order_relaxed);
  if (tls.buffer == nullptr || tls.buffer->generation != generation) {
    MutexLock lock(g_registry_mutex);
    generation = g_generation.load(std::memory_order_relaxed);
    tls.buffer = std::make_shared<ThreadBuffer>(g_ring_capacity,
                                                g_next_tid++, generation);
    tls.buffer->capture_start_s = g_capture_start_s;
    g_buffers.push_back(tls.buffer);
  }
  return tls.buffer;
}

void AppendEvent(ThreadBuffer* buffer, const SpanEvent& event) {
  size_t size = buffer->size.load(std::memory_order_relaxed);
  if (size >= buffer->events.size()) {
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->events[size] = event;
  buffer->size.store(size + 1, std::memory_order_release);
}

uint32_t EnterSpan() { return Tls().depth++; }

void LeaveSpan() { --Tls().depth; }

uint32_t BufferTid(const ThreadBuffer* buffer) { return buffer->tid; }

namespace {

thread_local SpanBuffer* tl_span_buffer = nullptr;

}  // namespace

}  // namespace internal

void Enable() {
  MutexLock lock(internal::g_registry_mutex);
  internal::g_buffers.clear();
  internal::g_next_tid = 0;
  internal::g_capture_start_s = MonotonicSeconds();
  internal::g_generation.fetch_add(1, std::memory_order_relaxed);
  internal::g_enabled.store(true, std::memory_order_relaxed);
}

void Disable() {
  internal::g_enabled.store(false, std::memory_order_relaxed);
}

bool IsEnabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

void SetRingCapacity(size_t events_per_thread) {
  MutexLock lock(internal::g_registry_mutex);
  internal::g_ring_capacity =
      events_per_thread > 0 ? events_per_thread : 1;
}

size_t RingCapacity() {
  MutexLock lock(internal::g_registry_mutex);
  return internal::g_ring_capacity;
}

uint64_t DroppedEvents() {
  std::vector<std::shared_ptr<internal::ThreadBuffer>> buffers;
  {
    MutexLock lock(internal::g_registry_mutex);
    buffers = internal::g_buffers;
  }
  uint64_t dropped = 0;
  for (const auto& buffer : buffers) {
    dropped += buffer->dropped.load(std::memory_order_relaxed);
  }
  return dropped;
}

size_t ActiveBufferCount() {
  MutexLock lock(internal::g_registry_mutex);
  return internal::g_buffers.size();
}

std::vector<SpanEvent> Collect() {
  std::vector<std::shared_ptr<internal::ThreadBuffer>> buffers;
  {
    MutexLock lock(internal::g_registry_mutex);
    buffers = internal::g_buffers;
  }
  std::vector<SpanEvent> events;
  for (const auto& buffer : buffers) {
    size_t size = buffer->size.load(std::memory_order_acquire);
    events.insert(events.end(), buffer->events.begin(),
                  buffer->events.begin() + static_cast<ptrdiff_t>(size));
  }
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.begin_us != b.begin_us) return a.begin_us < b.begin_us;
              if (a.depth != b.depth) return a.depth < b.depth;
              return a.dur_us > b.dur_us;  // parents outlive children
            });
  return events;
}

namespace {

void AppendEscaped(std::string* out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    char c = *p;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(c));
      out->append(buffer);
    } else {
      out->push_back(c);
    }
  }
}

void AppendMicros(std::string* out, double us) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", us);
  out->append(buffer);
}

}  // namespace

std::string ToChromeJson(const std::vector<SpanEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& event = events[i];
    if (i > 0) out += ",";
    out += "\n{\"name\":\"";
    AppendEscaped(&out, event.name);
    out += "\",\"cat\":\"diva\",\"ph\":\"X\",\"ts\":";
    AppendMicros(&out, event.begin_us);
    out += ",\"dur\":";
    AppendMicros(&out, event.dur_us);
    out += ",\"pid\":1,\"tid\":" + std::to_string(event.tid);
    if (event.has_range) {
      out += ",\"args\":{\"begin\":" + std::to_string(event.arg_begin) +
             ",\"end\":" + std::to_string(event.arg_end) + "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path) {
  std::string json = ToChromeJson(Collect());
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::IoError("cannot open trace output file: " + path);
  }
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  file.flush();
  if (!file) {
    return Status::IoError("failed writing trace output file: " + path);
  }
  return Status::OK();
}

void SpanBuffer::Commit() {
  if (events_.empty()) return;
  uint64_t generation =
      internal::g_generation.load(std::memory_order_relaxed);
  if (!IsEnabled() || generation_ != generation) {
    // The capture these spans were recorded into is over (or has been
    // restarted): their timebase is gone, so they cannot be rebased.
    events_.clear();
    return;
  }
  std::shared_ptr<internal::ThreadBuffer> buffer =
      internal::AcquireThreadBuffer();
  // Nest the committed spans under whatever is open on this thread —
  // the same depth they would have had if the work had run here.
  uint32_t base_depth = internal::Tls().depth;
  for (SpanEvent event : events_) {
    event.begin_us = (event.begin_us - buffer->capture_start_s) * 1e6;
    event.tid = buffer->tid;
    event.depth += base_depth;
    internal::AppendEvent(buffer.get(), event);
  }
  events_.clear();
}

ScopedBufferedSpans::ScopedBufferedSpans(SpanBuffer* buffer)
    : previous_(internal::tl_span_buffer) {
  internal::tl_span_buffer = buffer;
}

ScopedBufferedSpans::~ScopedBufferedSpans() {
  internal::tl_span_buffer = previous_;
}

void Span::Open(const char* name, int64_t range_begin, int64_t range_end,
                bool has_range) {
  if (internal::tl_span_buffer != nullptr) {
    redirect_ = internal::tl_span_buffer;
    if (redirect_->events_.empty() && redirect_->depth_ == 0) {
      redirect_->generation_ =
          internal::g_generation.load(std::memory_order_relaxed);
    }
    depth_ = redirect_->depth_++;
  } else {
    buffer_ = internal::AcquireThreadBuffer();
    depth_ = internal::EnterSpan();
  }
  name_ = name;
  arg_begin_ = range_begin;
  arg_end_ = range_end;
  has_range_ = has_range;
  begin_s_ = MonotonicSeconds();
}

void Span::Close() {
  double end_s = MonotonicSeconds();
  SpanEvent event;
  event.name = name_;
  event.dur_us = (end_s - begin_s_) * 1e6;
  event.depth = depth_;
  event.arg_begin = arg_begin_;
  event.arg_end = arg_end_;
  event.has_range = has_range_;
  if (redirect_ != nullptr) {
    --redirect_->depth_;
    // Raw begin seconds; rebased against the destination capture's
    // start at Commit (see the SpanBuffer encoding note).
    event.begin_us = begin_s_;
    redirect_->events_.push_back(event);
    redirect_ = nullptr;
    return;
  }
  internal::LeaveSpan();
  event.begin_us = (begin_s_ - buffer_->capture_start_s) * 1e6;
  event.tid = buffer_->tid;
  internal::AppendEvent(buffer_.get(), event);
  buffer_.reset();
}

}  // namespace trace
}  // namespace diva
