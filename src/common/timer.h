#ifndef DIVA_COMMON_TIMER_H_
#define DIVA_COMMON_TIMER_H_

#include <chrono>

namespace diva {

/// Monotonic stopwatch for measuring wall-clock durations.
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace diva

#endif  // DIVA_COMMON_TIMER_H_
