#ifndef DIVA_COMMON_TIMER_H_
#define DIVA_COMMON_TIMER_H_

#include <chrono>

namespace diva {

/// The one monotonic clock of the codebase. Every wall-clock measurement
/// (StopWatch, Deadline, DivaReport timings, benchmarks) reads this
/// helper; raw std::chrono clocks outside common/ are rejected by
/// tools/lint_status.py so that timing behavior stays in one audited
/// place (and a test clock could be swapped in here if ever needed).
inline double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic stopwatch for measuring wall-clock durations.
class StopWatch {
 public:
  StopWatch() : start_(MonotonicSeconds()) {}

  /// Resets the start point to now.
  void Restart() { start_ = MonotonicSeconds(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const { return MonotonicSeconds() - start_; }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  double start_;
};

/// Writes the elapsed seconds since construction into `*out` on scope
/// exit — phase timings stay populated even when a phase ends through an
/// early (deadline or error) return path.
class PhaseTimer {
 public:
  explicit PhaseTimer(double* out) : out_(out) {}
  ~PhaseTimer() { *out_ = watch_.ElapsedSeconds(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* out_;
  StopWatch watch_;
};

}  // namespace diva

#endif  // DIVA_COMMON_TIMER_H_
