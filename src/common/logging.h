#ifndef DIVA_COMMON_LOGGING_H_
#define DIVA_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace diva {
namespace internal {

/// Prints a fatal-check failure and aborts. Used by the DIVA_CHECK family;
/// never returns.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "FATAL %s:%d: check failed: %s %s\n", file, line, expr,
               message.c_str());
  std::abort();
}

/// Stream-style message builder so call sites can write
/// `DIVA_CHECK(x) << "context " << v;`-like messages via CheckMessage().
class CheckMessageBuilder {
 public:
  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace diva

/// Always-on invariant check. Aborts with file/line on failure. Use for
/// conditions that indicate a programming error, not for user input.
#define DIVA_CHECK(condition)                                             \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::diva::internal::CheckFailed(__FILE__, __LINE__, #condition, ""); \
    }                                                                     \
  } while (false)

#define DIVA_CHECK_MSG(condition, msg)                                     \
  do {                                                                     \
    if (!(condition)) {                                                    \
      ::diva::internal::CheckFailed(__FILE__, __LINE__, #condition, msg); \
    }                                                                      \
  } while (false)

/// Debug-only invariant check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define DIVA_DCHECK(condition) \
  do {                         \
  } while (false)
#else
#define DIVA_DCHECK(condition) DIVA_CHECK(condition)
#endif

#endif  // DIVA_COMMON_LOGGING_H_
