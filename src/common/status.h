#ifndef DIVA_COMMON_STATUS_H_
#define DIVA_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace diva {

/// Machine-readable failure category carried by a Status.
enum class StatusCode {
  kOk = 0,
  /// Malformed input (bad CSV, unparsable constraint, invalid schema).
  kInvalidArgument,
  /// A referenced entity (attribute, file, value) does not exist.
  kNotFound,
  /// The requested result provably does not exist (e.g., no diverse
  /// k-anonymous relation for the given (R, Sigma, k)).
  kInfeasible,
  /// A configured budget (search steps, enumeration cap) was exhausted
  /// before an exact answer was found.
  kBudgetExhausted,
  /// Internal invariant violation surfaced as an error instead of a crash.
  kInternal,
  /// I/O failure reading or writing a file.
  kIoError,
  /// A wall-clock deadline (DivaOptions::deadline_ms, DIVA_DEADLINE_MS)
  /// expired before the operation finished. In non-strict pipelines this
  /// degrades to a best-effort result instead of surfacing as an error.
  kDeadlineExceeded,
  /// The service cannot take the request right now (admission control
  /// predicted a deadline overrun, the queue is full, or the server is
  /// draining). Transient by definition: retrying after a backoff is the
  /// expected client response (see common/backoff.h).
  kUnavailable,
};

/// Returns a stable human-readable name such as "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a payload. Cheap to copy
/// in the OK case (no allocation); carries code + message otherwise.
///
/// This mirrors the Status idiom used across database engines (Arrow,
/// RocksDB, LevelDB): no exceptions cross the public API.
///
/// [[nodiscard]]: silently dropping a Status hides failures, so every
/// function returning one by value warns unless the caller consumes it
/// (the build promotes that warning to an error). Deliberate discards —
/// rare — must be spelled `(void)expr; // lint: allow-discard`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

namespace internal {

/// Extracts the Status of any "status-like" expression so that
/// DIVA_RETURN_IF_ERROR accepts both Status and Result<T> operands.
/// The Result<T> overload lives in common/result.h.
inline Status ToStatus(Status status) { return status; }

}  // namespace internal
}  // namespace diva

/// Propagates the error of a Status (or Result<T>) expression to the
/// caller; evaluates `expr` exactly once. The canonical early-return
/// macro for this codebase:
///
///   DIVA_RETURN_IF_ERROR(WriteCsvFile(relation, path));
#define DIVA_RETURN_IF_ERROR(expr)                           \
  do {                                                       \
    ::diva::Status _diva_st =                                \
        ::diva::internal::ToStatus((expr));                  \
    if (!_diva_st.ok()) return _diva_st;                     \
  } while (false)

/// Back-compat alias; prefer DIVA_RETURN_IF_ERROR in new code.
#define DIVA_RETURN_NOT_OK(expr) DIVA_RETURN_IF_ERROR(expr)

#endif  // DIVA_COMMON_STATUS_H_
