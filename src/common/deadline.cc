#include "common/deadline.h"

#include <atomic>
#include <cstdlib>

#include "common/counters.h"
#include "common/timer.h"

namespace diva {

Deadline Deadline::AfterMillis(int64_t ms) {
  return Deadline(MonotonicSeconds() + static_cast<double>(ms) * 1e-3);
}

Deadline Deadline::AfterSeconds(double seconds) {
  return Deadline(MonotonicSeconds() + seconds);
}

bool Deadline::is_infinite() const { return expires_at_ >= kNever; }

bool Deadline::Expired() const {
  return !is_infinite() && MonotonicSeconds() >= expires_at_;
}

double Deadline::RemainingSeconds() const {
  if (is_infinite()) return kNever;
  return expires_at_ - MonotonicSeconds();
}

struct CancellationToken::State {
  std::atomic<bool> cancelled{false};
  Deadline deadline;
  /// Optional upstream signal: when the parent trips, this token reads as
  /// cancelled too (latched locally so later polls skip the chain).
  CancellationToken parent;
};

CancellationToken CancellationToken::WithDeadline(Deadline deadline) {
  auto state = std::make_shared<State>();
  state->deadline = deadline;
  return CancellationToken(std::move(state));
}

CancellationToken CancellationToken::Manual() {
  return CancellationToken(std::make_shared<State>());
}

CancellationToken CancellationToken::WithDeadlineAndParent(
    Deadline deadline, CancellationToken parent) {
  auto state = std::make_shared<State>();
  state->deadline = deadline;
  state->parent = std::move(parent);
  return CancellationToken(std::move(state));
}

void CancellationToken::RequestCancel() const {
  if (state_ != nullptr) {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }
}

bool CancellationToken::Cancelled() const {
  if (state_ == nullptr) return false;
  // Execution-scoped: how often a run polls depends on chunking and
  // timing, not on the algorithm's decisions.
  DIVA_COUNTER_ADD_EXEC("deadline.polls", 1);
  if (state_->cancelled.load(std::memory_order_relaxed)) return true;
  if (state_->deadline.Expired() || state_->parent.Cancelled()) {
    // Latch: later polls skip the clock read and the parent chain.
    state_->cancelled.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

Deadline CancellationToken::deadline() const {
  return state_ == nullptr ? Deadline::Infinite() : state_->deadline;
}

int64_t EnvDeadlineMillis() {
  const char* env = std::getenv("DIVA_DEADLINE_MS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  long long value = std::strtoll(env, &end, 10);
  if (end == env || value < 0) return 0;
  return static_cast<int64_t>(value);
}

Status DeadlineExceededStatus(const std::string& phase) {
  return Status::DeadlineExceeded("deadline expired during " + phase);
}

}  // namespace diva
