#ifndef DIVA_COMMON_DEADLINE_H_
#define DIVA_COMMON_DEADLINE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace diva {

/// A point on the monotonic clock (common/timer.h) by which work must
/// finish. Deadlines are wall budgets, not CPU budgets: a run under a
/// 100 ms deadline returns within roughly that wall time no matter how
/// many threads it uses. Default-constructed deadlines never expire.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now (ms <= 0 = already expired).
  static Deadline AfterMillis(int64_t ms);

  /// Expires `seconds` seconds from now.
  static Deadline AfterSeconds(double seconds);

  bool is_infinite() const;

  /// True once the monotonic clock has passed the deadline.
  bool Expired() const;

  /// Seconds until expiry; negative once expired, +infinity when
  /// infinite.
  double RemainingSeconds() const;

 private:
  explicit Deadline(double expires_at) : expires_at_(expires_at) {}

  /// MonotonicSeconds() value at which the deadline expires.
  double expires_at_ = kNever;
  static constexpr double kNever = 1e300;
};

/// Cooperative cancellation signal, poll-cheap by design: a
/// default-constructed token is a single null-pointer test, an armed one
/// is one relaxed atomic load (plus a clock read until the deadline
/// latches). Copies share state, so a token handed to worker threads and
/// the token the coordinator trips are the same signal. Tokens trip at
/// most once and never un-trip.
class CancellationToken {
 public:
  /// Null token: Cancelled() is always false, RequestCancel is a no-op.
  CancellationToken() = default;

  /// Token that trips when `deadline` expires (or on RequestCancel).
  static CancellationToken WithDeadline(Deadline deadline);

  /// Token that trips only on RequestCancel.
  static CancellationToken Manual();

  /// Token that trips when `deadline` expires, on its own RequestCancel,
  /// or when `parent` trips — the serve layer's per-request shape: the
  /// child watches the request deadline while the parent stays in the
  /// watchdog's hand. Cancelling the child never propagates to the
  /// parent. A null parent behaves exactly like WithDeadline.
  static CancellationToken WithDeadlineAndParent(Deadline deadline,
                                                 CancellationToken parent);

  /// Trips the token (idempotent; no-op on a null token).
  void RequestCancel() const;

  /// True once the token tripped — manually or because its deadline
  /// expired. The deadline check latches into the shared flag, so after
  /// the first expired poll every subsequent poll is one atomic load.
  bool Cancelled() const;

  /// The deadline this token watches (Infinite for manual/null tokens).
  Deadline deadline() const;

  /// False for default-constructed (never-cancellable) tokens.
  bool CanBeCancelled() const { return state_ != nullptr; }

 private:
  struct State;
  explicit CancellationToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// The DIVA_DEADLINE_MS environment knob: unset, unparsable or negative
/// => 0 (no deadline), otherwise the wall budget in milliseconds.
int64_t EnvDeadlineMillis();

/// Convenience: a kDeadlineExceeded Status naming the phase that hit it.
Status DeadlineExceededStatus(const std::string& phase);

}  // namespace diva

#endif  // DIVA_COMMON_DEADLINE_H_
