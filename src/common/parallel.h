#ifndef DIVA_COMMON_PARALLEL_H_
#define DIVA_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "common/deadline.h"

namespace diva {

/// The one audited concurrency abstraction of the codebase (enforced by
/// tools/lint_status.py: raw std::thread / std::async may appear only in
/// common/parallel.*). Work is partitioned into index chunks whose
/// boundaries depend solely on (count, grain) — never on the thread count
/// or on completion order — and chunk results are always gathered by
/// index, so every parallel algorithm built on this layer is bit-identical
/// across thread counts by construction (see docs/development.md,
/// "Threading model").

/// Thread-count knob semantics, shared by DIVA_THREADS and
/// DivaOptions::threads: 0 = one thread per hardware core, 1 = exact
/// sequential execution (same code path, no workers), N = N threads.
/// Resolves 0 to the detected hardware concurrency (at least 1).
size_t ResolveThreadCount(size_t threads);

/// Detected hardware concurrency (>= 1). Call this instead of
/// std::thread::hardware_concurrency() — raw thread APIs are linted out
/// of every file but common/parallel.*.
size_t HardwareConcurrency();

/// The DIVA_THREADS environment knob, parsed per call: unset or
/// unparsable => 1 (sequential), otherwise the raw (unresolved) value.
size_t EnvThreads();

/// A fixed-size pool of worker threads executing blocking fork-join
/// loops. One loop runs at a time per pool; the submitting thread works
/// too, so a pool of width N keeps N-1 workers. Construction with an
/// (effective) width of 1 spawns no workers and every loop runs inline
/// through the identical chunking code.
class ThreadPool {
 public:
  /// `threads` follows the knob semantics above (0 = hardware cores).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (workers + the submitting thread).
  size_t threads() const;

  /// Runs body(begin, end) over consecutive chunks partitioning
  /// [0, count), each at most `grain` indices (grain 0 = auto). Blocks
  /// until every chunk finished. The first exception thrown by `body` is
  /// rethrown here once all in-flight chunks drain; chunks not yet
  /// claimed at that point are cancelled. Calling ParallelFor from
  /// inside a running body — on this or any pool — throws
  /// std::logic_error: nested use is rejected, because the inner loop
  /// would block a worker the outer loop needs. If another thread is
  /// already running a loop on this pool, the call degrades to inline
  /// sequential execution of the same chunks.
  ///
  /// Cancellation (see ScopedLoopCancellation): when the installed token
  /// trips mid-loop, threads stop CLAIMING chunks — chunks already
  /// claimed drain normally. Chunks are claimed in ascending index
  /// order, so the completed work is always the prefix [0, R) of the
  /// index space, where R is the returned value; gathering the finished
  /// prefix by index stays deterministic. Without a token (or when it
  /// never trips) the return value is always `count`. Callers that
  /// install a token MUST consult the return value (or re-poll the
  /// token) before trusting gathered results past the prefix.
  size_t ParallelFor(size_t count, size_t grain,
                     const std::function<void(size_t, size_t)>& body);

 private:
  struct Impl;
  Impl* impl_;
};

/// ---------------------------------------------------------------------
/// Process-global pool. All library call sites go through these free
/// functions; the pool is created lazily from DIVA_THREADS and resized by
/// SetParallelThreads (which RunDiva calls with DivaOptions::threads).

/// Current resolved width of the global pool.
size_t ParallelThreads();

/// Reconfigures the global pool (knob semantics above). Safe to call
/// while other threads hold loops on the previous pool: they finish on
/// the old pool, which is reclaimed when its last user releases it.
void SetParallelThreads(size_t threads);

/// ParallelFor on the global pool. Returns the completed index prefix
/// (always `count` unless an installed cancellation token tripped).
size_t ParallelFor(size_t count, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

/// Task parallelism for a handful of coarse, independent computations
/// (e.g. the portfolio coloring's speculative searches): runs fn(0) ..
/// fn(count-1) concurrently on dedicated threads (task 0 on the caller)
/// and blocks until all finish. Unlike ParallelFor bodies, tasks ARE
/// allowed to use ParallelFor internally — they are top-level work; when
/// several tasks hit the global pool at once, one wins it and the rest
/// degrade to inline execution. The first task exception is rethrown
/// after every task has finished. When the installed cancellation token
/// (ScopedLoopCancellation) is already tripped, tasks that have not yet
/// started are skipped; running tasks are expected to poll the token
/// themselves.
void RunTasks(size_t count, const std::function<void(size_t)>& fn);

/// A small pool of dedicated threads executing submitted closures with
/// DETERMINISTIC CLAIM ORDERING: pending items are claimed strictly in
/// submission (FIFO) order, never by arrival luck, so "the lowest
/// submitted index runs first" is a guarantee callers can build
/// deterministic adoption rules on (the speculative coloring search
/// adopts the lowest-index attempt whose speculative run is provably
/// identical to its sequential turn). Unlike ThreadPool this is task
/// (not loop) parallelism, and unlike RunTasks the submitter does not
/// block at submission: it collects a ticket per item and settles them
/// later, in any order it likes.
///
/// Speculative-cancel support: TryAbandon(ticket) atomically retracts an
/// item nobody claimed yet — the caller then owns running that work
/// itself (typically inline, under sequential semantics). AbandonAll
/// retracts every still-pending item at once. Claimed items always run
/// to completion; abandonment never interrupts a running closure (use a
/// CancellationToken inside the closure for that).
class TaskGroup {
 public:
  /// Spawns exactly `workers` dedicated threads (0 is allowed: every
  /// item then runs inline inside Wait's helping loop).
  explicit TaskGroup(size_t workers);

  /// Abandons all still-pending items and joins the workers. Claimed
  /// items finish first.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  size_t workers() const;

  /// True when at least one worker is parked waiting for work — a cheap
  /// hint for "would a speculative submission start promptly?". Racy by
  /// nature; callers may only use it to gate heuristics, never
  /// correctness.
  bool HasIdleWorker() const;

  /// Enqueues `fn` and returns its ticket. Tickets are dense and
  /// ascending in submission order.
  uint64_t Submit(std::function<void()> fn);

  /// Blocks until the item behind `ticket` has run, then rethrows the
  /// first exception it raised (if any). While waiting, the caller helps:
  /// it claims and runs pending items in FIFO order (possibly the waited
  /// item itself), so progress never depends on a worker being free.
  /// It is a fatal error to Wait on an abandoned ticket.
  void Wait(uint64_t ticket);

  /// Retracts a still-pending item: returns true and transfers ownership
  /// of the work back to the caller iff nobody claimed it yet. Returns
  /// false when the item is already claimed, done, or abandoned.
  bool TryAbandon(uint64_t ticket);

  /// TryAbandon for every pending item.
  void AbandonAll();

 private:
  struct Impl;
  Impl* impl_;
};

/// Installs `token` as the cancellation signal every ParallelFor /
/// RunTasks call observes until the scope exits (the previous token is
/// restored — scopes nest). Process-global like SetParallelThreads:
/// intended for the one pipeline driver (RunDiva) that owns the run.
/// A tripped token makes loops stop claiming work; it never corrupts
/// completed chunks — see ThreadPool::ParallelFor. Install it only
/// around phases whose drivers tolerate a truncated prefix of results.
class ScopedLoopCancellation {
 public:
  explicit ScopedLoopCancellation(CancellationToken token);
  ~ScopedLoopCancellation();

  ScopedLoopCancellation(const ScopedLoopCancellation&) = delete;
  ScopedLoopCancellation& operator=(const ScopedLoopCancellation&) = delete;

 private:
  CancellationToken previous_;
};

/// The currently installed loop-cancellation token (null when none).
CancellationToken CurrentLoopCancellation();

/// Applies fn(i) to every i in [0, count), gathering results by index —
/// the output vector is identical for every thread count.
template <typename T, typename Fn>
std::vector<T> ParallelMap(size_t count, size_t grain, Fn&& fn) {
  std::vector<T> out(count);
  ParallelFor(count, grain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return out;
}

/// Deterministic chunked reduction: map_chunk(begin, end) produces one
/// partial per chunk; partials are combined left-to-right in ascending
/// chunk order (never completion order), so even non-associative folds
/// (floating point) give one bit-stable answer for every thread count.
/// grain 0 picks a chunk size that is a pure function of `count`.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(size_t count, size_t grain, T init, MapFn&& map_chunk,
                 CombineFn&& combine) {
  if (count == 0) return init;
  if (grain == 0) grain = count / 64 + 1;
  size_t chunks = (count + grain - 1) / grain;
  std::vector<T> partials(chunks, init);
  ParallelFor(chunks, 1, [&](size_t chunk_begin, size_t chunk_end) {
    for (size_t c = chunk_begin; c < chunk_end; ++c) {
      size_t begin = c * grain;
      size_t end = begin + grain < count ? begin + grain : count;
      partials[c] = map_chunk(begin, end);
    }
  });
  T total = std::move(partials[0]);
  for (size_t c = 1; c < chunks; ++c) {
    total = combine(std::move(total), std::move(partials[c]));
  }
  return total;
}

}  // namespace diva

#endif  // DIVA_COMMON_PARALLEL_H_
