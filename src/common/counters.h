#ifndef DIVA_COMMON_COUNTERS_H_
#define DIVA_COMMON_COUNTERS_H_

/// Process-wide counter / histogram registry: cheap enough to leave on
/// permanently (unlike spans, counters have no off switch — they are
/// part of every DivaReport).
///
///   DIVA_COUNTER_ADD("coloring.backtracks", 1);
///   DIVA_HISTOGRAM_RECORD("diva.cluster_size", cluster.size());
///
/// Each macro site resolves its cell once (a function-local static) and
/// thereafter costs one relaxed fetch_add — commutative, so totals are
/// identical no matter which thread executes which piece of work.
///
/// Counters carry a Scope:
///
///   * kDeterministic — derived from the algorithm's decisions alone;
///     byte-identical across thread widths and across runs with the same
///     seed. tests/determinism_test.cc folds these into its fingerprint.
///   * kExecution — describes how the work was scheduled (pool chunks,
///     steal counts, deadline polls). Legitimately varies with pool
///     width and timing; excluded from determinism comparisons, still
///     reported.
///
/// Snapshots are sorted by name, so their JSON is deterministic given
/// deterministic values. RunDiva reports the per-run *delta* between the
/// snapshot at entry and at exit (histogram min/max are cumulative —
/// they cannot be differenced — and are reported as-is).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace diva {
namespace counters {

enum class Scope {
  kDeterministic,
  kExecution,
};

enum class Kind {
  kCounter,
  kHistogram,
};

/// Registry storage for one named metric. 64-byte aligned so two hot
/// cells never share a cache line.
struct alignas(64) Cell {
  std::atomic<uint64_t> value{0};  // counter total / histogram count
  std::atomic<uint64_t> sum{0};
  std::atomic<uint64_t> min{UINT64_MAX};
  std::atomic<uint64_t> max{0};
};

/// Returns the cell for `name`, creating it on first use (mutex; the
/// macros cache the pointer so this runs once per site). Registering an
/// existing name returns the same cell; kind/scope stick from the first
/// registration.
Cell* Register(const char* name, Kind kind, Scope scope);

inline void Add(Cell* cell, uint64_t delta) {
  cell->value.fetch_add(delta, std::memory_order_relaxed);
}

/// Deferred batch of deterministic-scope updates. Speculative work (a
/// coloring attempt run ahead of its sequential turn) records into a
/// Buffer instead of the global cells; the driver Commit()s the buffer
/// only if that work is adopted, so unadopted speculation leaves no
/// trace in the deterministic fingerprint. Not thread-safe: one buffer
/// belongs to one worker at a time.
class Buffer {
 public:
  void Add(Cell* cell, uint64_t delta);
  void Record(Cell* cell, uint64_t value);

  /// Applies every buffered update to the global cells (in insertion
  /// order, though order is immaterial — the ops commute) and clears.
  void Commit();

  /// Drops all buffered updates without applying them.
  void Discard();

  bool empty() const { return ops_.empty(); }

 private:
  struct Op {
    Cell* cell;
    bool histogram;
    uint64_t value;
  };
  std::vector<Op> ops_;
};

/// Thread-local redirect consulted by the deterministic-scope macros.
/// Null (the default) means updates go straight to the global cells.
/// constinit matters: without it every cross-TU read goes through the
/// dynamic-init thread wrapper, which GCC's ubsan misreports as a null
/// load on threads that read before they ever write (serve sessions).
extern constinit thread_local Buffer* tl_deterministic_buffer;

/// RAII: while alive, deterministic-scope updates made on the current
/// thread accumulate in `buffer` instead of the registry. Execution-
/// scope updates are never redirected — they are allowed to see
/// speculative work. Nests: the previous redirect is restored on exit.
class ScopedBufferedCounters {
 public:
  explicit ScopedBufferedCounters(Buffer* buffer)
      : previous_(tl_deterministic_buffer) {
    tl_deterministic_buffer = buffer;
  }
  ~ScopedBufferedCounters() { tl_deterministic_buffer = previous_; }

  ScopedBufferedCounters(const ScopedBufferedCounters&) = delete;
  ScopedBufferedCounters& operator=(const ScopedBufferedCounters&) = delete;

 private:
  Buffer* previous_;
};

inline void Record(Cell* cell, uint64_t value) {
  cell->value.fetch_add(1, std::memory_order_relaxed);
  cell->sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = cell->min.load(std::memory_order_relaxed);
  while (value < seen &&
         !cell->min.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
  seen = cell->max.load(std::memory_order_relaxed);
  while (value > seen &&
         !cell->max.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
}

/// Deterministic-scope entry points: honor the thread-local buffer
/// redirect. The execution-scope macros bypass these on purpose.
inline void AddDeterministic(Cell* cell, uint64_t delta) {
  if (Buffer* buffer = tl_deterministic_buffer) {
    buffer->Add(cell, delta);
    return;
  }
  Add(cell, delta);
}

inline void RecordDeterministic(Cell* cell, uint64_t value) {
  if (Buffer* buffer = tl_deterministic_buffer) {
    buffer->Record(cell, value);
    return;
  }
  Record(cell, value);
}

/// One registry entry as observed at a point in time.
struct Sample {
  std::string name;
  Kind kind = Kind::kCounter;
  Scope scope = Scope::kDeterministic;
  uint64_t value = 0;  // counter total / histogram observation count
  uint64_t sum = 0;    // histograms only
  uint64_t min = 0;    // histograms only; 0 when no observations
  uint64_t max = 0;

  friend bool operator==(const Sample& a, const Sample& b) = default;
};

/// Every registered metric, sorted by name.
std::vector<Sample> Snapshot();

/// Per-name difference `after - before` (names only in `after` count
/// from zero). value/sum subtract; histogram min/max are cumulative and
/// copied from `after`. Both inputs must be Snapshot()-sorted.
std::vector<Sample> Delta(const std::vector<Sample>& before,
                          const std::vector<Sample>& after);

/// `{"name":value,...}` with histograms rendered as
/// `{"count":..,"sum":..,"min":..,"max":..}`. Deterministic bytes for
/// deterministic samples.
std::string ToJson(const std::vector<Sample>& samples);

/// Keeps only samples with the given scope (e.g. the deterministic ones
/// for a cross-width comparison).
std::vector<Sample> FilterScope(const std::vector<Sample>& samples,
                                Scope scope);

/// Zeroes every cell. Not synchronized against concurrent Add/Record —
/// tests only.
void ResetForTest();

}  // namespace counters
}  // namespace diva

#define DIVA_COUNTER_CELL_(name, kind, scope)                       \
  [] {                                                              \
    static ::diva::counters::Cell* cell = ::diva::counters::Register( \
        name, ::diva::counters::Kind::kind,                         \
        ::diva::counters::Scope::scope);                            \
    return cell;                                                    \
  }()

/// Adds `delta` to a deterministic counter (identical totals at every
/// thread width). Honors the ScopedBufferedCounters redirect so
/// speculative work stays out of the fingerprint until adopted.
#define DIVA_COUNTER_ADD(name, delta)                                 \
  ::diva::counters::AddDeterministic(                                 \
      DIVA_COUNTER_CELL_(name, kCounter, kDeterministic),             \
      static_cast<uint64_t>(delta))

/// Adds `delta` to an execution counter (scheduling-dependent: pool
/// chunks, steals, polls — excluded from determinism fingerprints).
#define DIVA_COUNTER_ADD_EXEC(name, delta)                        \
  ::diva::counters::Add(                                          \
      DIVA_COUNTER_CELL_(name, kCounter, kExecution),             \
      static_cast<uint64_t>(delta))

/// Records one observation into a deterministic histogram. Honors the
/// ScopedBufferedCounters redirect like DIVA_COUNTER_ADD.
#define DIVA_HISTOGRAM_RECORD(name, value)                          \
  ::diva::counters::RecordDeterministic(                            \
      DIVA_COUNTER_CELL_(name, kHistogram, kDeterministic),         \
      static_cast<uint64_t>(value))

/// Records one observation into an execution histogram.
#define DIVA_HISTOGRAM_RECORD_EXEC(name, value)                 \
  ::diva::counters::Record(                                     \
      DIVA_COUNTER_CELL_(name, kHistogram, kExecution),         \
      static_cast<uint64_t>(value))

#endif  // DIVA_COMMON_COUNTERS_H_
