#include "common/bitset.h"

#include <algorithm>

#include "common/parallel.h"

namespace diva {

namespace {

/// Sequential popcount over a word range.
size_t PopcountRange(const uint64_t* words, size_t begin, size_t end) {
  size_t count = 0;
  for (size_t w = begin; w < end; ++w) {
    count += static_cast<size_t>(__builtin_popcountll(words[w]));
  }
  return count;
}

size_t PopcountAndRange(const uint64_t* a, const uint64_t* b, size_t begin,
                        size_t end) {
  size_t count = 0;
  for (size_t w = begin; w < end; ++w) {
    count += static_cast<size_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return count;
}

}  // namespace

void Bitset::Clear() { std::fill(words_.begin(), words_.end(), 0); }

size_t Bitset::Count() const {
  size_t n = words_.size();
  if (n < kParallelWordCutoff) {
    return PopcountRange(words_.data(), 0, n);
  }
  return ParallelReduce<size_t>(
      n, /*grain=*/0, size_t{0},
      [&](size_t begin, size_t end) {
        return PopcountRange(words_.data(), begin, end);
      },
      [](size_t a, size_t b) { return a + b; });
}

void Bitset::And(const Bitset& other) {
  DIVA_CHECK_MSG(bits_ == other.bits_, "Bitset::And size mismatch");
  size_t n = words_.size();
  if (n < kParallelWordCutoff) {
    for (size_t w = 0; w < n; ++w) words_[w] &= other.words_[w];
    return;
  }
  ParallelFor(n, /*grain=*/0, [&](size_t begin, size_t end) {
    for (size_t w = begin; w < end; ++w) words_[w] &= other.words_[w];
  });
}

void Bitset::AndNot(const Bitset& other) {
  DIVA_CHECK_MSG(bits_ == other.bits_, "Bitset::AndNot size mismatch");
  size_t n = words_.size();
  if (n < kParallelWordCutoff) {
    for (size_t w = 0; w < n; ++w) words_[w] &= ~other.words_[w];
    return;
  }
  ParallelFor(n, /*grain=*/0, [&](size_t begin, size_t end) {
    for (size_t w = begin; w < end; ++w) words_[w] &= ~other.words_[w];
  });
}

void Bitset::Or(const Bitset& other) {
  DIVA_CHECK_MSG(bits_ == other.bits_, "Bitset::Or size mismatch");
  size_t n = words_.size();
  if (n < kParallelWordCutoff) {
    for (size_t w = 0; w < n; ++w) words_[w] |= other.words_[w];
    return;
  }
  ParallelFor(n, /*grain=*/0, [&](size_t begin, size_t end) {
    for (size_t w = begin; w < end; ++w) words_[w] |= other.words_[w];
  });
}

size_t Bitset::IntersectionCount(const Bitset& a, const Bitset& b) {
  DIVA_CHECK_MSG(a.bits_ == b.bits_,
                 "Bitset::IntersectionCount size mismatch");
  size_t n = a.words_.size();
  if (n < kParallelWordCutoff) {
    return PopcountAndRange(a.words_.data(), b.words_.data(), 0, n);
  }
  return ParallelReduce<size_t>(
      n, /*grain=*/0, size_t{0},
      [&](size_t begin, size_t end) {
        return PopcountAndRange(a.words_.data(), b.words_.data(), begin, end);
      },
      [](size_t x, size_t y) { return x + y; });
}

bool Bitset::Intersects(const Bitset& other) const {
  DIVA_CHECK_MSG(bits_ == other.bits_, "Bitset::Intersects size mismatch");
  for (size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & other.words_[w]) != 0) return true;
  }
  return false;
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  DIVA_CHECK_MSG(bits_ == other.bits_, "Bitset::IsSubsetOf size mismatch");
  for (size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & ~other.words_[w]) != 0) return false;
  }
  return true;
}

bool Bitset::None() const {
  for (uint64_t word : words_) {
    if (word != 0) return false;
  }
  return true;
}

}  // namespace diva
