#ifndef DIVA_COMMON_MUTEX_H_
#define DIVA_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace diva {

/// Annotated mutex: the one sanctioned lock type in this codebase.
///
/// Wrapping `std::mutex` in a `DIVA_CAPABILITY` type is what lets
/// Clang's `-Wthread-safety` prove locking invariants statically: every
/// shared field is declared `DIVA_GUARDED_BY(mu)` and an access without
/// the lock held is a compile error, on every translation unit, under
/// every schedule — where tsan can only catch the interleavings a test
/// happens to produce. Raw `std::mutex` declarations outside this file
/// are rejected by tools/diva_analyze.py (check `raw-mutex`).
///
/// Prefer the scoped `MutexLock`; call `Lock`/`Unlock` directly only
/// when scope-based locking cannot express the pattern.
class DIVA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DIVA_ACQUIRE() { mu_.lock(); }
  void Unlock() DIVA_RELEASE() { mu_.unlock(); }
  bool TryLock() DIVA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;

  std::mutex mu_;
};

/// Tag type selecting the lock-adopting MutexLock constructor.
struct AdoptLock {};
inline constexpr AdoptLock kAdoptLock{};

/// RAII scoped lock over `Mutex` (replaces `std::lock_guard` /
/// `std::unique_lock`). The adopting form takes over a mutex the caller
/// already holds — e.g. one acquired conditionally via `TryLock` — so
/// the unlock still happens on every exit path, including unwinding.
class DIVA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DIVA_ACQUIRE(mu) : lock_(mu.mu_) {}
  MutexLock(Mutex& mu, AdoptLock) DIVA_REQUIRES(mu)
      : lock_(mu.mu_, std::adopt_lock) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() DIVA_RELEASE() {}  // lock_ releases in its own dtor

 private:
  friend class CondVar;

  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with `Mutex`.
///
/// `Wait` atomically releases the lock held by `lock` and reacquires it
/// before returning. To the static analysis the capability is held
/// across the call (release/reacquire nets out), which matches how
/// callers reason about it; always re-test the predicate in a loop:
///
///     MutexLock lock(mu);
///     while (!ready) cv.Wait(lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Timed Wait: blocks for at most `seconds` (relative). Returns false
  /// on timeout, true when notified. This is also the codebase's one
  /// interruptible sleep — loops that must wake early (a server's
  /// watchdog noticing a drain request) wait on the condition they poll
  /// instead of calling a raw sleep the notifier cannot interrupt.
  bool WaitFor(MutexLock& lock, double seconds) {
    return cv_.wait_for(lock.lock_, std::chrono::duration<double>(seconds)) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace diva

#endif  // DIVA_COMMON_MUTEX_H_
