#include "common/failpoint.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace diva {
namespace failpoint {

namespace {

/// Every instrumented site, kept sorted. A DIVA_FAIL call whose name is
/// missing here, or a stale entry with no matching call, fails
/// tests/fault_injection_test.cc — the table and the code cannot drift.
const char* const kKnownSites[] = {
    "audit.run",            // verify/auditor.cc: contract re-check
    "csv.open.read",        // relation/csv.cc: ReadCsvFile open
    "csv.open.write",       // relation/csv.cc: WriteCsvFile open
    "csv.read.record",      // relation/csv.cc: per parsed record
    "csv.write.row",        // relation/csv.cc: per written row
    // delta.* sites fire on the incremental re-anonymization path
    // (core/incremental.cc); a mid-delta fault surfaces a clean Status
    // and never a partially merged output.
    "delta.apply",          // core/incremental.cc: before delta validation
    "delta.merge",          // core/incremental.cc: before result hand-off
    "delta.recolor",        // core/incremental.cc: before the re-color run
    "diva.coloring.begin",  // core/diva.cc: before the coloring search
    "diva.graph.build",     // core/diva.cc: constraint-graph construction
    "diva.integrate",       // core/diva.cc: upper-bound repair phase
    "diva.publish",         // core/diva.cc: final result hand-off
    "diva.suppress",        // core/diva.cc: S_Sigma suppression phase
    "kmember.build",        // anon/kmember.cc: baseline clustering
    "mondrian.build",       // anon/mondrian.cc: baseline clustering
    "oka.build",            // anon/oka.cc: baseline clustering
    "privacy.ldiversity",   // anon/privacy.cc: l-diversity merging
    "privacy.tcloseness",   // anon/privacy.cc: t-closeness merging
    "relation.append_row",  // relation/relation.cc: row ingestion
    // serve/ sites: swept by the chaos suite in tests/serve_chaos_test.cc
    // (the pipeline sweep in tests/fault_injection_test.cc skips the
    // "serve." prefix — a pipeline run never opens a socket).
    "serve.accept",         // serve/server.cc: accepted connection intake
    "serve.admission",      // serve/server.cc: admission-control decision
    "serve.enqueue",        // serve/server.cc: bounded queue hand-off
    "serve.execute",        // serve/server.cc: before the pipeline run
    "serve.frame.read",     // serve/protocol.cc: request frame read
    "serve.publish",        // serve/snapshot.cc: snapshot publication
    "serve.request.parse",  // serve/protocol.cc: request decoding
    "serve.respond",        // serve/server.cc: response frame write
    // shard.* sites fire on the component-sharded coloring path
    // (core/shard.cc); shard.run/shard.merge need a multi-component
    // instance, which the pipeline sweep's disjoint-target run provides.
    "shard.merge",          // core/shard.cc: outcome merge hand-off
    "shard.partition",      // core/diva.cc: component plan computation
    "shard.run",            // core/shard.cc: per-shard coloring task
};

struct Site {
  uint64_t hits = 0;
  bool armed = false;
  bool fired = false;
  StatusCode code = StatusCode::kInternal;
  uint64_t trigger_hit = 1;
};

struct Registry {
  Mutex mutex;
  std::unordered_map<std::string, Site> sites DIVA_GUARDED_BY(mutex);
  bool counting DIVA_GUARDED_BY(mutex) = false;
  bool env_parsed DIVA_GUARDED_BY(mutex) = false;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;  // leaked: outlives every site
  return *registry;
}

/// Number of armed sites plus the counting flag — the fast-path gate.
/// While zero, Check() is a single relaxed load and an immediate return.
std::atomic<uint32_t> g_active{0};

/// Lowercases and strips '-'/'_' so "io-error", "IoError" and "io_error"
/// compare equal.
std::string NormalizeCode(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '-' || c == '_') continue;
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

bool ParseStatusCode(const std::string& text, StatusCode* code) {
  static const std::pair<const char*, StatusCode> kCodes[] = {
      {"invalidargument", StatusCode::kInvalidArgument},
      {"invalid", StatusCode::kInvalidArgument},
      {"notfound", StatusCode::kNotFound},
      {"infeasible", StatusCode::kInfeasible},
      {"budgetexhausted", StatusCode::kBudgetExhausted},
      {"internal", StatusCode::kInternal},
      {"ioerror", StatusCode::kIoError},
      {"io", StatusCode::kIoError},
      {"deadlineexceeded", StatusCode::kDeadlineExceeded},
      {"unavailable", StatusCode::kUnavailable},
  };
  std::string normalized = NormalizeCode(text);
  for (const auto& [name, value] : kCodes) {
    if (normalized == name) {
      *code = value;
      return true;
    }
  }
  return false;
}

/// Prefix every spec-parse error with the 1-based entry index, its column
/// in the spec string, and the offending entry text, so a chaos run's
/// DIVA_FAILPOINTS typo points at the exact field that is wrong.
Status SpecEntryError(size_t entry_index, size_t column,
                      const std::string& entry, const std::string& detail) {
  return Status::InvalidArgument(
      "DIVA_FAILPOINTS entry " + std::to_string(entry_index) + " (col " +
      std::to_string(column + 1) + ", '" + entry + "'): " + detail +
      "; expected name=code[@hit:N]");
}

/// Arms every entry of `spec` into an already-locked registry. The whole
/// spec is validated before anything is armed: a half-armed chaos spec
/// would silently test nothing, so a malformed entry arms none of them.
Status ArmFromSpecLocked(Registry& registry, const std::string& spec)
    DIVA_REQUIRES(registry.mutex) {
  struct Parsed {
    std::string name;
    StatusCode code;
    uint64_t trigger_hit;
  };
  std::vector<Parsed> parsed;
  size_t pos = 0;
  size_t entry_index = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const size_t column = pos;
    std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    ++entry_index;
    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return SpecEntryError(entry_index, column, entry,
                            "missing '=' between name and code");
    }
    if (eq == 0) {
      return SpecEntryError(entry_index, column, entry,
                            "empty site name before '='");
    }
    std::string name = entry.substr(0, eq);
    std::string code_text = entry.substr(eq + 1);
    uint64_t trigger_hit = 1;
    size_t at = code_text.find('@');
    if (at != std::string::npos) {
      std::string trigger = code_text.substr(at + 1);
      code_text = code_text.substr(0, at);
      if (trigger.rfind("hit:", 0) != 0) {
        return SpecEntryError(entry_index, column, entry,
                              "trigger '" + trigger +
                                  "' is not of the form hit:N");
      }
      char* end = nullptr;
      unsigned long long n = std::strtoull(trigger.c_str() + 4, &end, 10);
      if (end == trigger.c_str() + 4 || *end != '\0' || n == 0) {
        return SpecEntryError(entry_index, column, entry,
                              "hit count '" + trigger.substr(4) +
                                  "' must be a positive integer");
      }
      trigger_hit = static_cast<uint64_t>(n);
    }
    if (code_text.empty()) {
      return SpecEntryError(entry_index, column, entry,
                            "empty status code after '='");
    }
    StatusCode code;
    if (!ParseStatusCode(code_text, &code)) {
      return SpecEntryError(entry_index, column, entry,
                            "unknown status code '" + code_text + "'");
    }
    // A misspelled site name would arm a failpoint nothing ever hits —
    // the chaos run would silently test nothing. Spec-armed names must
    // exist (the programmatic Arm() API stays unchecked for tests).
    if (!std::binary_search(std::begin(kKnownSites), std::end(kKnownSites),
                            name,
                            [](const auto& a, const auto& b) {
                              return std::string_view(a) <
                                     std::string_view(b);
                            })) {
      return SpecEntryError(entry_index, column, entry,
                            "unknown failpoint site '" + name +
                                "' (list live sites with "
                                "verify_cli --list-failpoints)");
    }
    parsed.push_back({std::move(name), code, trigger_hit});
  }
  for (Parsed& p : parsed) {
    Site& site = registry.sites[p.name];
    site.armed = true;
    site.fired = false;
    site.hits = 0;
    site.code = p.code;
    site.trigger_hit = p.trigger_hit;
    g_active.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

/// Parses DIVA_FAILPOINTS once per Reset. A malformed spec aborts: a
/// fault-injection run with a half-armed spec would silently test
/// nothing.
void MaybeArmFromEnvLocked(Registry& registry)
    DIVA_REQUIRES(registry.mutex) {
  if (registry.env_parsed) return;
  registry.env_parsed = true;
  const char* env = std::getenv("DIVA_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  Status armed = ArmFromSpecLocked(registry, env);
  if (!armed.ok()) {
    std::fprintf(stderr, "FATAL: DIVA_FAILPOINTS: %s\n",
                 armed.ToString().c_str());
    std::abort();
  }
}

}  // namespace

Status Check(const char* name) {
  // One-time lazy DIVA_FAILPOINTS parse (thread-safe magic static).
  static const bool env_initialized = [] {
    Registry& registry = GetRegistry();
    MutexLock lock(registry.mutex);
    MaybeArmFromEnvLocked(registry);
    return true;
  }();
  (void)env_initialized;
  // Fast path: nothing armed, no counting — one relaxed load.
  if (g_active.load(std::memory_order_relaxed) == 0) return Status::OK();
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  Site& site = registry.sites[name];
  ++site.hits;
  if (site.armed && !site.fired && site.hits == site.trigger_hit) {
    site.fired = true;
    return Status(site.code, std::string("failpoint '") + name +
                                 "' fired (hit " +
                                 std::to_string(site.hits) + ")");
  }
  return Status::OK();
}

void Arm(const std::string& name, StatusCode code, uint64_t trigger_hit) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  Site& site = registry.sites[name];
  site.armed = true;
  site.fired = false;
  site.hits = 0;
  site.code = code;
  site.trigger_hit = trigger_hit == 0 ? 1 : trigger_hit;
  g_active.fetch_add(1, std::memory_order_relaxed);
}

Status ArmFromSpec(const std::string& spec) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  return ArmFromSpecLocked(registry, spec);
}

void Reset() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  registry.sites.clear();
  registry.counting = false;
  registry.env_parsed = true;  // an explicit Reset overrides the env
  g_active.store(0, std::memory_order_relaxed);
}

uint64_t HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  auto it = registry.sites.find(name);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

void SetCounting(bool enabled) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  if (registry.counting == enabled) return;
  registry.counting = enabled;
  if (enabled) {
    g_active.fetch_add(1, std::memory_order_relaxed);
  } else {
    g_active.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::vector<std::string> HitSites() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  std::vector<std::string> names;
  for (const auto& [name, site] : registry.sites) {
    if (site.hits > 0) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> KnownFailpoints() {
  std::vector<std::string> names(std::begin(kKnownSites),
                                 std::end(kKnownSites));
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace failpoint
}  // namespace diva
