#ifndef DIVA_COMMON_BITSET_H_
#define DIVA_COMMON_BITSET_H_

/// Dense bitset kernels for the search hot paths (see docs/development.md,
/// "Performance playbook"). A Bitset packs bits into 64-bit words and
/// exposes word-batched And/AndNot/Or plus popcount-based counting, so
/// membership-heavy inner loops (the coloring engine's target bitmaps and
/// claimed-row tracking) cost one popcount per word instead of one probe
/// per row. Kernels above kParallelWordCutoff words run on the audited
/// parallel layer (ParallelFor / ParallelReduce) with chunk boundaries
/// that are a pure function of the word count — bit-identical results at
/// every thread width, like everything else built on common/parallel.h.
///
/// Invariant: bits at positions >= size() in the last word are always
/// zero, so Count() and the binary kernels never need a tail mask.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"

namespace diva {

class Bitset {
 public:
  Bitset() = default;

  /// A bitset of `bits` zero bits.
  explicit Bitset(size_t bits) { Resize(bits); }

  /// Resizes to `bits` bits, zeroing everything (contents do not
  /// survive a resize; the coloring engine sizes its bitsets once).
  void Resize(size_t bits) {
    bits_ = bits;
    words_.assign(NumWords(bits), 0);
  }

  size_t size() const { return bits_; }
  size_t num_words() const { return words_.size(); }
  bool empty() const { return bits_ == 0; }

  bool Test(size_t i) const {
    DIVA_DCHECK(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(size_t i) {
    DIVA_DCHECK(i < bits_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void Reset(size_t i) {
    DIVA_DCHECK(i < bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  /// Zeroes every bit (size unchanged).
  void Clear();

  /// Number of set bits. Word-batched popcount; ParallelReduce above the
  /// cutoff.
  size_t Count() const;

  /// this &= other. Sizes must match.
  void And(const Bitset& other);

  /// this &= ~other (set difference). Sizes must match.
  void AndNot(const Bitset& other);

  /// this |= other. Sizes must match.
  void Or(const Bitset& other);

  /// popcount(a & b) without materializing the intersection — the
  /// coloring engine's per-constraint contribution kernel. Sizes must
  /// match.
  static size_t IntersectionCount(const Bitset& a, const Bitset& b);

  /// True when a & b has any set bit (early exit on the first hit).
  bool Intersects(const Bitset& other) const;

  /// True when every set bit of *this is set in `other` (word-wise
  /// this & ~other == 0, early exit).
  bool IsSubsetOf(const Bitset& other) const;

  bool None() const;
  bool Any() const { return !None(); }

  /// Calls fn(i) for every set bit i in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        size_t bit = static_cast<size_t>(__builtin_ctzll(word));
        fn((w << 6) + bit);
        word &= word - 1;
      }
    }
  }

  /// Raw word storage (little-endian bit order within a word).
  const uint64_t* words() const { return words_.data(); }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.bits_ == b.bits_ && a.words_ == b.words_;
  }

  /// Kernels at or above this many words fan out over the parallel
  /// layer; below it the per-chunk dispatch costs more than it saves.
  /// Both paths are bit-identical, so the cutoff only decides speed.
  static constexpr size_t kParallelWordCutoff = size_t{1} << 16;

 private:
  static size_t NumWords(size_t bits) { return (bits + 63) >> 6; }

  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

/// Thread-safe pool of equally-sized scratch bitsets for speculative
/// workers. Probe closures running on TaskGroup threads each need a
/// cleared scratch Bitset the size of the relation; allocating one per
/// probe would dominate the probe itself, and sharing the engine's own
/// scratch across threads would race. Acquire() hands out a cleared
/// bitset (reusing a returned one when available); the RAII Lease puts
/// it back on destruction.
class BitsetPool {
 public:
  explicit BitsetPool(size_t bits) : bits_(bits) {}

  BitsetPool(const BitsetPool&) = delete;
  BitsetPool& operator=(const BitsetPool&) = delete;

  class Lease {
   public:
    Lease(BitsetPool* pool, std::unique_ptr<Bitset> bitset)
        : pool_(pool), bitset_(std::move(bitset)) {}
    ~Lease() {
      if (bitset_ != nullptr) pool_->Release(std::move(bitset_));
    }

    Lease(Lease&& other) noexcept
        : pool_(other.pool_), bitset_(std::move(other.bitset_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    Bitset& operator*() { return *bitset_; }
    Bitset* operator->() { return bitset_.get(); }

   private:
    BitsetPool* pool_;
    std::unique_ptr<Bitset> bitset_;
  };

  /// Returns a cleared bitset of the pool's size.
  Lease Acquire() {
    {
      MutexLock lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<Bitset> bitset = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(bitset));
      }
    }
    auto bitset = std::make_unique<Bitset>();
    bitset->Resize(bits_);
    return Lease(this, std::move(bitset));
  }

  size_t bits() const { return bits_; }

 private:
  void Release(std::unique_ptr<Bitset> bitset) {
    bitset->Clear();
    MutexLock lock(mutex_);
    free_.push_back(std::move(bitset));
  }

  const size_t bits_;
  Mutex mutex_;
  std::vector<std::unique_ptr<Bitset>> free_ DIVA_GUARDED_BY(mutex_);
};

}  // namespace diva

#endif  // DIVA_COMMON_BITSET_H_
