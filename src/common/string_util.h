#ifndef DIVA_COMMON_STRING_UTIL_H_
#define DIVA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace diva {

/// Splits `input` on `delimiter`, preserving empty fields.
/// Split("a,,b", ',') -> {"a", "", "b"}; Split("", ',') -> {""}.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Parses a base-10 signed integer; the whole string must be consumed.
[[nodiscard]] Result<int64_t> ParseInt64(std::string_view input);

/// Parses a floating point number; the whole string must be consumed.
[[nodiscard]] Result<double> ParseDouble(std::string_view input);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string ToLowerAscii(std::string_view input);

}  // namespace diva

#endif  // DIVA_COMMON_STRING_UTIL_H_
