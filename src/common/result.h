#ifndef DIVA_COMMON_RESULT_H_
#define DIVA_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace diva {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced. Accessing the value of a failed Result is
/// a programming error (checked).
///
/// [[nodiscard]] for the same reason as Status: an ignored Result is an
/// ignored failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: `return MakeRelation(...);`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: `return Status::InvalidArgument(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    DIVA_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    DIVA_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T& value() & {
    DIVA_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T&& value() && {
    DIVA_CHECK_MSG(ok(), status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK when value_ holds a value.
  std::optional<T> value_;
};

namespace internal {

/// Result<T> overload for DIVA_RETURN_IF_ERROR (see common/status.h).
template <typename T>
Status ToStatus(const Result<T>& result) {
  return result.ok() ? Status::OK() : result.status();
}

}  // namespace internal
}  // namespace diva

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status. `lhs` must be a declaration or assignable lvalue.
#define DIVA_ASSIGN_OR_RETURN(lhs, rexpr)             \
  DIVA_ASSIGN_OR_RETURN_IMPL_(                        \
      DIVA_RESULT_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define DIVA_RESULT_CONCAT_INNER_(x, y) x##y
#define DIVA_RESULT_CONCAT_(x, y) DIVA_RESULT_CONCAT_INNER_(x, y)

#define DIVA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // DIVA_COMMON_RESULT_H_
