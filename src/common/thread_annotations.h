#ifndef DIVA_COMMON_THREAD_ANNOTATIONS_H_
#define DIVA_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety capability annotations.
///
/// These macros attach Clang's `-Wthread-safety` attributes to types,
/// fields and functions so that locking invariants are checked at
/// compile time on every translation unit: which mutex guards which
/// field, which functions must (or must not) be called with a lock
/// held, and which scoped objects acquire/release a capability. Under
/// GCC (or any compiler without the attributes) every macro expands to
/// nothing, so annotated code builds identically everywhere; the
/// `clang-analyze` preset turns the analysis into hard errors.
///
/// The vocabulary follows the Clang documentation (and Abseil's
/// equivalent header): a `DIVA_CAPABILITY` type is a lock, fields are
/// tied to it with `DIVA_GUARDED_BY`, functions declare lock contracts
/// with `DIVA_REQUIRES` / `DIVA_ACQUIRE` / `DIVA_RELEASE`, and RAII
/// lockers are `DIVA_SCOPED_CAPABILITY`. Use these only through
/// common/mutex.h — raw `std::mutex` outside that wrapper is rejected
/// by tools/diva_analyze.py (check `raw-mutex`).

#if defined(__clang__)
#define DIVA_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define DIVA_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Marks a class as a capability (a lock). The string argument names
/// the capability kind in diagnostics, e.g. "mutex".
#define DIVA_CAPABILITY(x) \
  DIVA_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define DIVA_SCOPED_CAPABILITY \
  DIVA_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Declares that the field it is attached to is protected by the given
/// capability: reads require the capability held shared or exclusive,
/// writes require it exclusive.
#define DIVA_GUARDED_BY(x) \
  DIVA_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// As DIVA_GUARDED_BY, but protects the data *pointed to* by the
/// annotated pointer rather than the pointer itself.
#define DIVA_PT_GUARDED_BY(x) \
  DIVA_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention).
#define DIVA_ACQUIRED_BEFORE(...) \
  DIVA_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define DIVA_ACQUIRED_AFTER(...) \
  DIVA_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// The calling thread must hold the capability on entry, and still
/// holds it on exit (the function neither acquires nor releases it).
#define DIVA_REQUIRES(...) \
  DIVA_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// The function acquires the capability and holds it past the return.
#define DIVA_ACQUIRE(...) \
  DIVA_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// The function releases a capability the caller held on entry.
#define DIVA_RELEASE(...) \
  DIVA_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// The function attempts to acquire the capability; the first argument
/// is the return value that means success.
#define DIVA_TRY_ACQUIRE(...) \
  DIVA_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// The calling thread must NOT hold the capability (non-reentrancy /
/// deadlock guard).
#define DIVA_EXCLUDES(...) \
  DIVA_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held, teaching the
/// analysis the fact without a visible acquisition.
#define DIVA_ASSERT_CAPABILITY(x) \
  DIVA_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// The function returns a reference to the given capability.
#define DIVA_RETURN_CAPABILITY(x) \
  DIVA_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Reserve for code
/// whose safety argument the analysis cannot express (e.g. init/teardown
/// paths that are provably single-threaded); justify with a comment.
#define DIVA_NO_THREAD_SAFETY_ANALYSIS \
  DIVA_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // DIVA_COMMON_THREAD_ANNOTATIONS_H_
