#ifndef DIVA_COMMON_FAILPOINT_H_
#define DIVA_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace diva {
namespace failpoint {

/// Fault-injection sites for exercising error paths systematically.
///
/// A failpoint is a named place in the library where a test (or the
/// DIVA_FAILPOINTS environment variable) can deterministically inject an
/// error Status. Sites are spelled
///
///     DIVA_RETURN_IF_ERROR(DIVA_FAIL("csv.read.record"));
///
/// and cost one relaxed atomic load when nothing is armed, so they are
/// safe on per-row paths. Every site name must also appear in the
/// kKnownSites table in failpoint.cc; tests/fault_injection_test.cc
/// sweeps that table through the full pipeline and fails on any drift
/// between the table and the instrumented sites.
///
/// Activation (pick one):
///   - env:  DIVA_FAILPOINTS="csv.read.record=io@hit:3,audit.run=internal"
///     parsed by ArmFromEnv() at the first Check() call;
///   - test API: Arm("csv.read.record", StatusCode::kIoError, 3).
///
/// Triggers are deterministic hit counts: the site fires on exactly its
/// N-th hit (1-based, default 1) and passes on every other hit. Hits are
/// counted per site since the last Reset().

/// Returns OK unless `name` is armed and this hit is its trigger hit.
/// Also counts the hit when counting is enabled (see SetCounting).
[[nodiscard]] Status Check(const char* name);

/// Arms `name` to return `code` on its `trigger_hit`-th hit (1-based).
/// Rearming a site resets its hit count and fired latch.
void Arm(const std::string& name, StatusCode code, uint64_t trigger_hit = 1);

/// Parses a DIVA_FAILPOINTS-style spec ("name=code[@hit:N],...") and arms
/// every entry. Codes match StatusCodeToString case-insensitively, with
/// '-'/'_' ignored ("io-error", "IoError" and "io" all mean kIoError).
/// Validation is strict and all-or-nothing: a malformed field or a site
/// name absent from KnownFailpoints() returns kInvalidArgument naming the
/// entry index, its column in the spec, and the offending field — and
/// arms nothing (a half-armed chaos spec would silently test nothing).
[[nodiscard]] Status ArmFromSpec(const std::string& spec);

/// Disarms every site, zeroes hit counters, and disables counting.
void Reset();

/// Hits recorded for `name` since the last Reset. Counting happens while
/// any site is armed or SetCounting(true) is in effect.
uint64_t HitCount(const std::string& name);

/// Forces hit counting even with nothing armed (coverage accounting in
/// tests). Off by default so production runs pay only one atomic load.
void SetCounting(bool enabled);

/// Names of every site hit at least once since the last Reset, sorted.
/// Only meaningful while counting (or an armed site) keeps hits recorded;
/// fault_injection_test checks it against KnownFailpoints() so an
/// instrumented site missing from the table cannot slip through.
std::vector<std::string> HitSites();

/// Every site name compiled into the library, sorted ascending.
std::vector<std::string> KnownFailpoints();

}  // namespace failpoint
}  // namespace diva

/// A fault-injection site. Evaluates to a Status: OK in normal operation,
/// the armed error when the named failpoint triggers. Consume it like any
/// other Status (typically DIVA_RETURN_IF_ERROR).
#define DIVA_FAIL(name) ::diva::failpoint::Check(name)

#endif  // DIVA_COMMON_FAILPOINT_H_
