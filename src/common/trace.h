#ifndef DIVA_COMMON_TRACE_H_
#define DIVA_COMMON_TRACE_H_

/// Span tracing: where the wall time of a run went, phase by phase and
/// chunk by chunk, exportable as Chrome-trace / Perfetto JSON.
///
///   {
///     DIVA_TRACE_SPAN("diva/clustering");   // RAII: closes on scope exit
///     ...
///   }
///   DIVA_TRACE_SPAN_RANGE("pool/chunk", begin, end);  // + index range
///
/// Design contract (docs/development.md "Observability"):
///
///   * DISABLED (the default) a span site costs exactly one relaxed
///     atomic load — no clock read, no allocation, no branch beyond the
///     flag test. Benchmarks run with tracing off are byte- and
///     speed-identical to an untraced build (bench_smoke asserts the
///     wall-time ratio).
///   * ENABLED, every thread appends to its own fixed-capacity ring
///     buffer: a single-writer vector whose published size is
///     release-stored after the slot is written, so Collect() — which
///     acquire-loads the size and reads only that prefix — is race-free
///     against in-flight writers (the tsan CI leg runs with tracing on
///     at DIVA_THREADS=8). No lock is ever taken on the span path; the
///     registry mutex is touched once per thread per capture, at first
///     use.
///   * OVERFLOW drops the *newest* events (the earliest spans — the ones
///     that explain where time went — survive) and counts the drops;
///     DroppedEvents() says whether a capture is complete.
///
/// Timestamps come from MonotonicSeconds() (common/timer.h), the one
/// audited clock, converted to microseconds since Enable().
///
/// Counters are the other half of the observability layer — see
/// common/counters.h.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace diva {
namespace trace {

/// One closed span, as collected. Times are microseconds since the
/// capture's Enable() call; `tid` is a dense capture-local thread index
/// in registration order (not an OS id — stable enough to sort on and
/// small enough to read in a trace viewer).
struct SpanEvent {
  const char* name = "";
  double begin_us = 0.0;
  double dur_us = 0.0;
  uint32_t tid = 0;
  /// Nesting depth at the time the span opened (0 = top level). Sorting
  /// by (tid, begin_us, depth) lists every parent before its children.
  uint32_t depth = 0;
  /// Optional index range payload (DIVA_TRACE_SPAN_RANGE), rendered as
  /// {"begin":..,"end":..} args in the Chrome JSON.
  int64_t arg_begin = 0;
  int64_t arg_end = 0;
  bool has_range = false;
};

namespace internal {

/// The one global gate. Span sites load it relaxed and do nothing more
/// when it is false; no span-path data is written unless it is true, so
/// a stale read is always benign (a span is skipped or sent to a retired
/// buffer that is simply never collected).
extern std::atomic<bool> g_enabled;

struct ThreadBuffer;

/// Returns this thread's buffer for the current capture generation,
/// registering one (mutex, once per thread per capture) if needed.
std::shared_ptr<ThreadBuffer> AcquireThreadBuffer();

void AppendEvent(ThreadBuffer* buffer, const SpanEvent& event);

/// Capture-local nesting depth of the calling thread.
uint32_t EnterSpan();
void LeaveSpan();

uint32_t BufferTid(const ThreadBuffer* buffer);

}  // namespace internal

/// Starts a new capture: clears all previous events, resets thread ids,
/// re-arms every span site. Safe to call at any time; spans already open
/// keep writing to their retired buffers and are not collected.
void Enable();

/// Stops recording (span sites go back to one relaxed load). Collected
/// events survive until the next Enable().
void Disable();

bool IsEnabled();

/// Per-thread ring capacity in events. Takes effect for buffers created
/// by the *next* Enable(); the default is 65536 events per thread.
void SetRingCapacity(size_t events_per_thread);
size_t RingCapacity();

/// Events dropped to overflow since the last Enable().
uint64_t DroppedEvents();

/// Thread buffers registered since the last Enable() (test hook: proves
/// the disabled path never touches the registry).
size_t ActiveBufferCount();

/// Snapshot of every closed span, sorted by (tid, begin_us, depth).
/// Callable while tracing is live: only the published prefix of each
/// buffer is read.
std::vector<SpanEvent> Collect();

/// Serializes events as Chrome-trace JSON ("traceEvents" complete
/// events, ph:"X", ts/dur in microseconds). Deterministic: the same
/// vector always yields the same bytes. Open the file in ui.perfetto.dev
/// or chrome://tracing.
std::string ToChromeJson(const std::vector<SpanEvent>& events);

/// Collect() + ToChromeJson() + write to `path`.
[[nodiscard]] Status WriteChromeTrace(const std::string& path);

class Span;

/// Redirect sink for speculative work. While installed on a thread (see
/// ScopedBufferedSpans), spans closed on that thread collect here
/// instead of in the global capture; the owner later either Commit()s
/// them into the committing thread's capture buffer or Discard()s them.
/// The coloring driver uses this so a trace only ever shows the spans of
/// adopted speculative work — the same attribution rule as the
/// deterministic counters (counters::Buffer).
///
/// Single-threaded object: recorded on one thread, committed or
/// discarded on one (possibly different) thread, with the handoff
/// externally synchronized. Every span opened under the redirect must
/// close before the redirect scope ends.
class SpanBuffer {
 public:
  /// Republishes the recorded spans under the calling thread's id,
  /// nested under its currently open spans. Spans recorded into a
  /// previous capture generation (tracing re-Enabled since, or off by
  /// now) are silently dropped — their timebase is gone.
  void Commit();

  void Discard() { events_.clear(); }
  bool empty() const { return events_.empty(); }

 private:
  friend class Span;

  /// In-buffer encoding: begin_us temporarily holds the *raw* monotonic
  /// begin time in seconds (the capture start offset is only known at
  /// Commit, when the destination buffer is) and tid/depth are
  /// placeholders rebased at Commit.
  std::vector<SpanEvent> events_;
  uint32_t depth_ = 0;
  uint64_t generation_ = 0;
};

/// Installs `buffer` as the calling thread's span redirect for the
/// current scope, saving and restoring any previous redirect.
class ScopedBufferedSpans {
 public:
  explicit ScopedBufferedSpans(SpanBuffer* buffer);
  ~ScopedBufferedSpans();

  ScopedBufferedSpans(const ScopedBufferedSpans&) = delete;
  ScopedBufferedSpans& operator=(const ScopedBufferedSpans&) = delete;

 private:
  SpanBuffer* previous_;
};

/// RAII span. Prefer the macros below; the constructor bodies are inline
/// so the disabled path compiles down to the single flag load.
class Span {
 public:
  explicit Span(const char* name) {
    if (internal::g_enabled.load(std::memory_order_relaxed)) {
      Open(name, 0, 0, /*has_range=*/false);
    }
  }
  Span(const char* name, int64_t range_begin, int64_t range_end) {
    if (internal::g_enabled.load(std::memory_order_relaxed)) {
      Open(name, range_begin, range_end, /*has_range=*/true);
    }
  }
  ~Span() {
    if (buffer_ != nullptr || redirect_ != nullptr) Close();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void Open(const char* name, int64_t range_begin, int64_t range_end,
            bool has_range);
  void Close();

  /// Owning reference: keeps the buffer alive even if a new capture
  /// retires it from the registry while this span is open.
  std::shared_ptr<internal::ThreadBuffer> buffer_;
  /// Non-null instead of buffer_ when a ScopedBufferedSpans redirect was
  /// active at open; the closed event goes there.
  SpanBuffer* redirect_ = nullptr;
  const char* name_ = nullptr;
  double begin_s_ = 0.0;
  int64_t arg_begin_ = 0;
  int64_t arg_end_ = 0;
  uint32_t depth_ = 0;
  bool has_range_ = false;
};

}  // namespace trace
}  // namespace diva

#define DIVA_TRACE_CONCAT_IMPL_(a, b) a##b
#define DIVA_TRACE_CONCAT_(a, b) DIVA_TRACE_CONCAT_IMPL_(a, b)

/// Opens a span that closes at the end of the enclosing scope.
#define DIVA_TRACE_SPAN(name) \
  ::diva::trace::Span DIVA_TRACE_CONCAT_(diva_trace_span_, __LINE__)(name)

/// Span with an index-range payload (e.g. a pool chunk's [begin, end)).
#define DIVA_TRACE_SPAN_RANGE(name, range_begin, range_end)          \
  ::diva::trace::Span DIVA_TRACE_CONCAT_(diva_trace_span_,           \
                                         __LINE__)((name),           \
                                                   (range_begin),    \
                                                   (range_end))

#endif  // DIVA_COMMON_TRACE_H_
