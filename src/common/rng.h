#ifndef DIVA_COMMON_RNG_H_
#define DIVA_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace diva {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
///
/// Every randomized component in the library takes an explicit seed so
/// experiments are exactly reproducible. Not cryptographically secure.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Number of raw Next() draws consumed so far (including rejection
  /// retries inside NextBounded). Two generators seeded identically are
  /// in the same state iff their draw counts match, which lets callers
  /// prove "this code path consumed no randomness" without snapshotting
  /// the state words.
  uint64_t DrawCount() const { return draws_; }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Standard normal via Box-Muller (mean 0, stddev 1).
  double Gaussian();

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives an independent child generator; useful to give each worker
  /// or repetition its own stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  uint64_t draws_ = 0;
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Samples from a Zipfian distribution over {0, ..., n-1} with skew
/// exponent s (frequency of rank r proportional to 1/(r+1)^s).
///
/// Precomputes the inverse CDF table once; sampling is O(log n) via
/// binary search. Suitable for the dictionary-domain sizes used in the
/// workload generators (up to ~1e6).
class ZipfSampler {
 public:
  /// `n` must be >= 1; `s` >= 0 (s = 0 degenerates to uniform).
  ZipfSampler(size_t n, double s);

  size_t Sample(Rng* rng) const;

  size_t n() const { return n_; }
  double s() const { return s_; }

 private:
  size_t n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i), cdf_.back() == 1.
};

}  // namespace diva

#endif  // DIVA_COMMON_RNG_H_
