#include "common/counters.h"

#include <algorithm>
#include <map>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace diva {
namespace counters {

namespace {

struct Entry {
  Kind kind = Kind::kCounter;
  Scope scope = Scope::kDeterministic;
  std::unique_ptr<Cell> cell;
};

Mutex g_mutex;

/// name -> entry, ordered so Snapshot() is sorted for free. Entries are
/// never removed: a Cell* handed to a macro site stays valid for the
/// process lifetime.
std::map<std::string, Entry>& Registry() DIVA_REQUIRES(g_mutex) {
  static auto* registry = new std::map<std::string, Entry>();
  return *registry;
}

}  // namespace

constinit thread_local Buffer* tl_deterministic_buffer = nullptr;

void Buffer::Add(Cell* cell, uint64_t delta) {
  // Coalesce counter bumps per cell: a speculative attempt touches only
  // a handful of distinct deterministic counters, so a linear scan beats
  // a hash map here.
  for (Op& op : ops_) {
    if (op.cell == cell && !op.histogram) {
      op.value += delta;
      return;
    }
  }
  ops_.push_back(Op{cell, false, delta});
}

void Buffer::Record(Cell* cell, uint64_t value) {
  // Histogram observations carry min/max, so each one is kept verbatim.
  ops_.push_back(Op{cell, true, value});
}

void Buffer::Commit() {
  for (const Op& op : ops_) {
    if (op.histogram) {
      counters::Record(op.cell, op.value);
    } else {
      counters::Add(op.cell, op.value);
    }
  }
  ops_.clear();
}

void Buffer::Discard() { ops_.clear(); }

Cell* Register(const char* name, Kind kind, Scope scope) {
  MutexLock lock(g_mutex);
  auto& registry = Registry();
  auto it = registry.find(name);
  if (it == registry.end()) {
    Entry entry;
    entry.kind = kind;
    entry.scope = scope;
    entry.cell = std::make_unique<Cell>();
    it = registry.emplace(name, std::move(entry)).first;
  }
  return it->second.cell.get();
}

std::vector<Sample> Snapshot() {
  MutexLock lock(g_mutex);
  std::vector<Sample> samples;
  const auto& registry = Registry();
  samples.reserve(registry.size());
  for (const auto& [name, entry] : registry) {
    Sample sample;
    sample.name = name;
    sample.kind = entry.kind;
    sample.scope = entry.scope;
    sample.value = entry.cell->value.load(std::memory_order_relaxed);
    if (entry.kind == Kind::kHistogram) {
      sample.sum = entry.cell->sum.load(std::memory_order_relaxed);
      uint64_t min = entry.cell->min.load(std::memory_order_relaxed);
      sample.min = sample.value == 0 ? 0 : min;
      sample.max = entry.cell->max.load(std::memory_order_relaxed);
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::vector<Sample> Delta(const std::vector<Sample>& before,
                          const std::vector<Sample>& after) {
  std::vector<Sample> delta;
  delta.reserve(after.size());
  size_t b = 0;
  for (const Sample& sample : after) {
    while (b < before.size() && before[b].name < sample.name) ++b;
    Sample d = sample;
    if (b < before.size() && before[b].name == sample.name) {
      d.value -= before[b].value;
      d.sum -= before[b].sum;
    }
    delta.push_back(std::move(d));
  }
  return delta;
}

std::string ToJson(const std::vector<Sample>& samples) {
  std::string out = "{";
  bool first = true;
  for (const Sample& sample : samples) {
    if (!first) out += ",";
    first = false;
    out += "\"" + sample.name + "\":";
    if (sample.kind == Kind::kHistogram) {
      out += "{\"count\":" + std::to_string(sample.value) +
             ",\"sum\":" + std::to_string(sample.sum) +
             ",\"min\":" + std::to_string(sample.min) +
             ",\"max\":" + std::to_string(sample.max) + "}";
    } else {
      out += std::to_string(sample.value);
    }
  }
  out += "}";
  return out;
}

std::vector<Sample> FilterScope(const std::vector<Sample>& samples,
                                Scope scope) {
  std::vector<Sample> filtered;
  for (const Sample& sample : samples) {
    if (sample.scope == scope) filtered.push_back(sample);
  }
  return filtered;
}

void ResetForTest() {
  MutexLock lock(g_mutex);
  for (auto& [name, entry] : Registry()) {
    entry.cell->value.store(0, std::memory_order_relaxed);
    entry.cell->sum.store(0, std::memory_order_relaxed);
    entry.cell->min.store(UINT64_MAX, std::memory_order_relaxed);
    entry.cell->max.store(0, std::memory_order_relaxed);
  }
}

}  // namespace counters
}  // namespace diva
