#ifndef DIVA_COMMON_BACKOFF_H_
#define DIVA_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>
#include <optional>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace diva {

/// Retry pacing for clients of an overloadable service (diva_serverd):
/// jittered exponential backoff per request plus a process-wide retry
/// budget, so a shed storm decays into spread-out retries instead of a
/// synchronized thundering herd. Deterministic given the seed — the
/// loadgen replay driver reproduces byte-identical schedules.
struct BackoffOptions {
  /// Base delay before the first retry.
  double initial_ms = 10.0;
  /// Cap on any single delay.
  double max_ms = 2000.0;
  /// Growth factor per retry (>= 1).
  double multiplier = 2.0;
  /// Jitter fraction in [0, 1]: each delay is drawn uniformly from
  /// [(1 - jitter) * d, d]. 0 = fully deterministic ladder, 1 = "full
  /// jitter" (uniform over (0, d]).
  double jitter = 0.5;
  /// Retries allowed per logical request before giving up.
  size_t max_retries = 8;
};

/// Per-request backoff state. Not thread-safe: one Backoff belongs to one
/// client worker at a time.
class Backoff {
 public:
  Backoff(const BackoffOptions& options, uint64_t seed)
      : options_(options), rng_(seed) {}

  /// Delay to sleep before the next retry, or nullopt once the retry
  /// allowance is spent. Consumes one retry.
  std::optional<double> NextDelayMs() {
    if (retries_ >= options_.max_retries) return std::nullopt;
    double ceiling = options_.initial_ms;
    for (size_t i = 0; i < retries_; ++i) {
      ceiling = std::min(ceiling * options_.multiplier, options_.max_ms);
    }
    ceiling = std::min(ceiling, options_.max_ms);
    ++retries_;
    const double floor = ceiling * (1.0 - options_.jitter);
    return floor + (ceiling - floor) * rng_.UniformDouble();
  }

  /// Retries consumed since construction / the last Reset.
  size_t retries() const { return retries_; }

  /// Starts the ladder over (a fresh logical request on this client).
  void Reset() { retries_ = 0; }

 private:
  BackoffOptions options_;
  Rng rng_;
  size_t retries_ = 0;
};

/// A shared retry *budget* (after Finagle): every first attempt deposits
/// a fraction of a token, every retry withdraws a whole one. When more
/// than `deposit_per_call` of the traffic is retries, the budget drains
/// and further retries are refused — clients shed instead of amplifying
/// an overloaded server's pain. Thread-safe: one budget is shared by all
/// client workers of a process.
class RetryBudget {
 public:
  /// `deposit_per_call` is the sustainable retry ratio (e.g. 0.2 = up to
  /// 20% retries on top of first attempts); `initial_tokens` seeds the
  /// bucket so startup bursts can retry; `max_tokens` caps accumulation.
  RetryBudget(double deposit_per_call, double initial_tokens,
              double max_tokens)
      : deposit_per_call_(deposit_per_call),
        max_tokens_(max_tokens),
        tokens_(std::min(initial_tokens, max_tokens)) {}

  /// Records a first attempt (not a retry), growing the budget.
  void RecordCall() {
    MutexLock lock(mutex_);
    tokens_ = std::min(tokens_ + deposit_per_call_, max_tokens_);
  }

  /// Withdraws one retry from the budget. False = budget exhausted; the
  /// caller must give up instead of retrying.
  bool TryWithdrawRetry() {
    MutexLock lock(mutex_);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Current balance (diagnostics / tests).
  double tokens() const {
    MutexLock lock(mutex_);
    return tokens_;
  }

 private:
  const double deposit_per_call_;
  const double max_tokens_;
  mutable Mutex mutex_;
  double tokens_ DIVA_GUARDED_BY(mutex_);
};

}  // namespace diva

#endif  // DIVA_COMMON_BACKOFF_H_
