#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "common/counters.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/trace.h"

namespace diva {

namespace {

/// Set while this thread executes a ParallelFor body (worker or
/// submitter side); a ParallelFor entered under it is nested use.
thread_local bool tl_in_parallel_body = false;

class BodyScope {
 public:
  BodyScope() { tl_in_parallel_body = true; }
  ~BodyScope() { tl_in_parallel_body = false; }
};

size_t AutoGrain(size_t count, size_t threads) {
  // ~4 chunks per thread: enough slack to absorb uneven chunk costs
  // without shrinking chunks into scheduling noise. Depends only on the
  // pool's fixed width — never on how many threads happen to be idle —
  // so the partition (and every gather-by-index result built on it) is
  // stable for a given pool configuration. A width-1 pool takes the same
  // route with threads = 1.
  size_t target = threads * 4;
  return count / target + 1;
}

/// One fork-join invocation. Heap-allocated and shared_ptr-held by every
/// participating thread, so a worker that straggles past the join can
/// only ever touch the (kept-alive, exhausted) job it signed up for,
/// never the state of a subsequent job.
struct Job {
  const std::function<void(size_t, size_t)>* body = nullptr;
  size_t count = 0;
  size_t grain = 0;
  size_t chunks = 0;
  CancellationToken cancel;  // copied at submission; null = never trips
  std::atomic<size_t> next_chunk{0};

  Mutex mutex;
  CondVar done_cv;
  size_t completed_chunks DIVA_GUARDED_BY(mutex) = 0;
  /// Chunk index where the fully-executed prefix ends; `chunks` when
  /// every chunk ran.
  size_t first_unrun_chunk DIVA_GUARDED_BY(mutex) = 0;
  std::exception_ptr first_error DIVA_GUARDED_BY(mutex);

  /// Marks every not-yet-claimed chunk as cancelled: no thread will run
  /// them, so account for them as completed and remember where the
  /// executed prefix ends. Claims are monotonic (fetch_add), so the
  /// chunks claimed before the exchange are exactly [0, raw) and all of
  /// them drain to completion.
  void CancelUnclaimedLocked() DIVA_REQUIRES(mutex) {
    size_t raw = next_chunk.exchange(chunks, std::memory_order_relaxed);
    size_t claimed = raw < chunks ? raw : chunks;
    DIVA_COUNTER_ADD_EXEC("pool.chunks_cancelled", chunks - claimed);
    completed_chunks += chunks - claimed;
    if (claimed < first_unrun_chunk) first_unrun_chunk = claimed;
  }

  /// Claims and runs chunks until none remain or the token trips. Any
  /// thread may call this; chunk -> index-range mapping is fixed by
  /// (count, grain) alone. `is_worker` is observability-only: it decides
  /// whether a completed chunk counts as stolen (run by a pool worker
  /// rather than the submitting thread).
  void RunChunks(bool is_worker) {
    while (true) {
      if (cancel.Cancelled()) {
        MutexLock lock(mutex);
        CancelUnclaimedLocked();
        if (completed_chunks == chunks) done_cv.NotifyAll();
        return;
      }
      size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunks) return;
      size_t begin = chunk * grain;
      size_t end = begin + grain < count ? begin + grain : count;
      DIVA_COUNTER_ADD_EXEC("pool.chunks", 1);
      if (is_worker) DIVA_COUNTER_ADD_EXEC("pool.chunks_stolen", 1);
      std::exception_ptr error;
      try {
        DIVA_TRACE_SPAN_RANGE("pool/chunk", static_cast<int64_t>(begin),
                              static_cast<int64_t>(end));
        BodyScope scope;
        (*body)(begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      MutexLock lock(mutex);
      if (error != nullptr) {
        if (first_error == nullptr) first_error = error;
        // Cancel chunks nobody claimed yet; account for them as completed
        // since no thread will ever run (and count) them. In-flight
        // chunks drain normally and count themselves.
        CancelUnclaimedLocked();
      }
      if (++completed_chunks == chunks) done_cv.NotifyAll();
    }
  }

  /// Blocks until every chunk completed (or was cancelled).
  void Join() {
    MutexLock lock(mutex);
    while (completed_chunks != chunks) done_cv.Wait(lock);
  }

  /// First exception any chunk raised, if any. Call after Join.
  std::exception_ptr FirstError() {
    MutexLock lock(mutex);
    return first_error;
  }

  /// Index-space prefix [0, n) that fully executed. Call after Join.
  size_t CompletedPrefix() {
    MutexLock lock(mutex);
    size_t done = first_unrun_chunk * grain;
    return done < count ? done : count;
  }
};

size_t RunInline(size_t count, size_t grain,
                 const std::function<void(size_t, size_t)>& body,
                 const CancellationToken& cancel) {
  DIVA_COUNTER_ADD_EXEC("pool.inline_loops", 1);
  for (size_t begin = 0; begin < count; begin += grain) {
    if (cancel.Cancelled()) return begin;
    size_t end = begin + grain < count ? begin + grain : count;
    DIVA_COUNTER_ADD_EXEC("pool.chunks", 1);
    DIVA_TRACE_SPAN_RANGE("pool/chunk", static_cast<int64_t>(begin),
                          static_cast<int64_t>(end));
    BodyScope scope;
    body(begin, end);
  }
  return count;
}

/// Process-global loop-cancellation token; read once per submitted loop.
Mutex g_cancel_mutex;
CancellationToken g_loop_cancel DIVA_GUARDED_BY(g_cancel_mutex);

}  // namespace

size_t HardwareConcurrency() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t ResolveThreadCount(size_t threads) {
  return threads == 0 ? HardwareConcurrency() : threads;
}

size_t EnvThreads() {
  const char* env = std::getenv("DIVA_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  long value = std::strtol(env, &end, 10);
  if (end == env || value < 0) return 1;
  return static_cast<size_t>(value);
}

struct ThreadPool::Impl {
  size_t threads = 1;

  Mutex mutex;
  CondVar work_cv;                       // workers: new job or shutdown
  /// Bumped per submitted job.
  uint64_t generation DIVA_GUARDED_BY(mutex) = 0;
  /// Null between jobs.
  std::shared_ptr<Job> current_job DIVA_GUARDED_BY(mutex);
  bool shutdown DIVA_GUARDED_BY(mutex) = false;

  Mutex submit_mutex;                    // one fork-join loop at a time
  std::vector<std::thread> workers;

  void WorkerLoop() {
    uint64_t seen = 0;
    while (true) {
      std::shared_ptr<Job> job;
      {
        MutexLock lock(mutex);
        while (!shutdown && generation == seen) work_cv.Wait(lock);
        if (shutdown) return;
        seen = generation;
        job = current_job;  // may be null if the job already retired
      }
      if (job != nullptr) job->RunChunks(/*is_worker=*/true);
    }
  }
};

ThreadPool::ThreadPool(size_t threads) : impl_(new Impl) {
  impl_->threads = ResolveThreadCount(threads);
  impl_->workers.reserve(impl_->threads - 1);
  for (size_t i = 0; i + 1 < impl_->threads; ++i) {
    impl_->workers.emplace_back([impl = impl_] { impl->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->work_cv.NotifyAll();
  for (std::thread& worker : impl_->workers) worker.join();
  delete impl_;
}

size_t ThreadPool::threads() const { return impl_->threads; }

namespace {

/// Leaves a zero-length marker span in the trace when a loop was cut
/// short, carrying the completed prefix [0, prefix) against the full
/// count — the trace-side view of PR 3's anytime semantics.
void AnnotateCancelledPrefix(size_t prefix, size_t count) {
  if (prefix >= count) return;
  DIVA_TRACE_SPAN_RANGE("pool/cancelled_prefix",
                        static_cast<int64_t>(prefix),
                        static_cast<int64_t>(count));
}

}  // namespace

size_t ThreadPool::ParallelFor(
    size_t count, size_t grain,
    const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return 0;
  DIVA_COUNTER_ADD_EXEC("pool.loops", 1);
  if (tl_in_parallel_body) {
    throw std::logic_error(
        "nested ParallelFor: a parallel body may not start another "
        "parallel loop (the inner loop would block a worker the outer "
        "loop owns)");
  }
  CancellationToken cancel;
  {
    MutexLock lock(g_cancel_mutex);
    cancel = g_loop_cancel;
  }
  if (grain == 0) grain = AutoGrain(count, impl_->threads);
  size_t chunks = (count + grain - 1) / grain;
  if (impl_->threads == 1 || chunks == 1) {
    size_t prefix = RunInline(count, grain, body, cancel);
    AnnotateCancelledPrefix(prefix, count);
    return prefix;
  }
  if (!impl_->submit_mutex.TryLock()) {
    // Another thread is mid-loop on this pool (e.g. two portfolio
    // searches enumerating concurrently): degrade to inline execution of
    // the identical chunks rather than queueing behind it.
    size_t prefix = RunInline(count, grain, body, cancel);
    AnnotateCancelledPrefix(prefix, count);
    return prefix;
  }
  // Adopt the try-acquired submit lock so every exit path below —
  // including the rethrow — releases it.
  MutexLock submit(impl_->submit_mutex, kAdoptLock);
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->count = count;
  job->grain = grain;
  job->chunks = chunks;
  job->cancel = cancel;
  {
    MutexLock lock(job->mutex);
    job->first_unrun_chunk = chunks;
  }
  {
    MutexLock lock(impl_->mutex);
    impl_->current_job = job;
    ++impl_->generation;
  }
  impl_->work_cv.NotifyAll();
  job->RunChunks(/*is_worker=*/false);  // the submitter participates
  job->Join();
  {
    MutexLock lock(impl_->mutex);
    impl_->current_job = nullptr;
  }
  if (std::exception_ptr error = job->FirstError()) {
    std::rethrow_exception(error);
  }
  size_t prefix = job->CompletedPrefix();
  AnnotateCancelledPrefix(prefix, count);
  return prefix;
}

namespace {

Mutex g_pool_mutex;
std::shared_ptr<ThreadPool> g_pool
    DIVA_GUARDED_BY(g_pool_mutex);  // created lazily

std::shared_ptr<ThreadPool> GlobalPool() {
  MutexLock lock(g_pool_mutex);
  if (g_pool == nullptr) {
    g_pool = std::make_shared<ThreadPool>(EnvThreads());
  }
  return g_pool;
}

}  // namespace

size_t ParallelThreads() { return GlobalPool()->threads(); }

void SetParallelThreads(size_t threads) {
  size_t resolved = ResolveThreadCount(threads);
  std::shared_ptr<ThreadPool> retired;  // joined after the lock drops
  {
    MutexLock lock(g_pool_mutex);
    if (g_pool != nullptr && g_pool->threads() == resolved) return;
    retired = std::move(g_pool);
    g_pool = std::make_shared<ThreadPool>(resolved);
  }
}

size_t ParallelFor(size_t count, size_t grain,
                   const std::function<void(size_t, size_t)>& body) {
  return GlobalPool()->ParallelFor(count, grain, body);
}

void RunTasks(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  CancellationToken cancel = CurrentLoopCancellation();
  if (count == 1) {
    if (!cancel.Cancelled()) fn(0);
    return;
  }
  Mutex mutex;
  std::exception_ptr first_error;
  auto run_task = [&](size_t task) {
    if (cancel.Cancelled()) return;  // skip tasks not yet started
    try {
      fn(task);
    } catch (...) {
      MutexLock lock(mutex);
      if (first_error == nullptr) first_error = std::current_exception();
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(count - 1);
  for (size_t task = 1; task < count; ++task) {
    workers.emplace_back([&run_task, task] { run_task(task); });
  }
  run_task(0);
  for (std::thread& worker : workers) worker.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

struct TaskGroup::Impl {
  enum class State { kPending, kClaimed, kDone, kAbandoned };

  struct Item {
    std::function<void()> fn;
    State state = State::kPending;
    std::exception_ptr error;
  };

  size_t worker_count = 0;
  std::atomic<size_t> idle_workers{0};

  Mutex mutex;
  CondVar work_cv;  // workers: pending item arrived or shutdown
  CondVar done_cv;  // waiters: an item transitioned to kDone
  std::map<uint64_t, Item> items DIVA_GUARDED_BY(mutex);
  /// Tickets of kPending items, FIFO. The front is always the lowest
  /// outstanding ticket, which is what makes claim order deterministic.
  std::deque<uint64_t> pending DIVA_GUARDED_BY(mutex);
  uint64_t next_ticket DIVA_GUARDED_BY(mutex) = 0;
  bool shutdown DIVA_GUARDED_BY(mutex) = false;

  std::vector<std::thread> threads;

  /// Pops the FIFO-front pending item and marks it claimed. Caller must
  /// then RunItem it. Requires !pending.empty().
  std::pair<uint64_t, std::function<void()>> ClaimFrontLocked()
      DIVA_REQUIRES(mutex) {
    uint64_t ticket = pending.front();
    pending.pop_front();
    Item& item = items.at(ticket);
    item.state = State::kClaimed;
    return {ticket, std::move(item.fn)};
  }

  void RunItem(uint64_t ticket, const std::function<void()>& fn) {
    std::exception_ptr error;
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
    MutexLock lock(mutex);
    Item& item = items.at(ticket);
    item.state = State::kDone;
    item.error = error;
    done_cv.NotifyAll();
  }

  void WorkerLoop() {
    while (true) {
      uint64_t ticket;
      std::function<void()> fn;
      {
        MutexLock lock(mutex);
        while (!shutdown && pending.empty()) {
          idle_workers.fetch_add(1, std::memory_order_relaxed);
          work_cv.Wait(lock);
          idle_workers.fetch_sub(1, std::memory_order_relaxed);
        }
        if (shutdown && pending.empty()) return;
        std::tie(ticket, fn) = ClaimFrontLocked();
      }
      DIVA_COUNTER_ADD_EXEC("taskgroup.claimed_by_worker", 1);
      RunItem(ticket, fn);
    }
  }
};

TaskGroup::TaskGroup(size_t workers) : impl_(new Impl) {
  impl_->worker_count = workers;
  impl_->threads.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    impl_->threads.emplace_back([impl = impl_] { impl->WorkerLoop(); });
  }
}

TaskGroup::~TaskGroup() {
  {
    MutexLock lock(impl_->mutex);
    // Retract everything nobody claimed; claimed items drain in the
    // worker that owns them before it observes shutdown.
    for (uint64_t ticket : impl_->pending) {
      impl_->items.at(ticket).state = Impl::State::kAbandoned;
      impl_->items.at(ticket).fn = nullptr;
    }
    impl_->pending.clear();
    impl_->shutdown = true;
  }
  impl_->work_cv.NotifyAll();
  for (std::thread& thread : impl_->threads) thread.join();
  delete impl_;
}

size_t TaskGroup::workers() const { return impl_->worker_count; }

bool TaskGroup::HasIdleWorker() const {
  return impl_->idle_workers.load(std::memory_order_relaxed) > 0;
}

uint64_t TaskGroup::Submit(std::function<void()> fn) {
  DIVA_COUNTER_ADD_EXEC("taskgroup.submitted", 1);
  uint64_t ticket;
  {
    MutexLock lock(impl_->mutex);
    ticket = impl_->next_ticket++;
    Impl::Item item;
    item.fn = std::move(fn);
    impl_->items.emplace(ticket, std::move(item));
    impl_->pending.push_back(ticket);
  }
  impl_->work_cv.NotifyOne();
  return ticket;
}

void TaskGroup::Wait(uint64_t ticket) {
  while (true) {
    uint64_t help_ticket;
    std::function<void()> help_fn;
    {
      MutexLock lock(impl_->mutex);
      auto it = impl_->items.find(ticket);
      DIVA_CHECK_MSG(it != impl_->items.end(),
                     "TaskGroup::Wait on unknown ticket");
      DIVA_CHECK_MSG(it->second.state != Impl::State::kAbandoned,
                     "TaskGroup::Wait on abandoned ticket");
      if (it->second.state == Impl::State::kDone) {
        std::exception_ptr error = it->second.error;
        if (error != nullptr) std::rethrow_exception(error);
        return;
      }
      if (impl_->pending.empty()) {
        // Our item is claimed (or another helper beat us to the queue):
        // park until something settles.
        impl_->done_cv.Wait(lock);
        continue;
      }
      std::tie(help_ticket, help_fn) = impl_->ClaimFrontLocked();
    }
    DIVA_COUNTER_ADD_EXEC("taskgroup.claimed_by_waiter", 1);
    impl_->RunItem(help_ticket, help_fn);
  }
}

bool TaskGroup::TryAbandon(uint64_t ticket) {
  MutexLock lock(impl_->mutex);
  auto it = impl_->items.find(ticket);
  DIVA_CHECK_MSG(it != impl_->items.end(),
                 "TaskGroup::TryAbandon on unknown ticket");
  if (it->second.state != Impl::State::kPending) return false;
  it->second.state = Impl::State::kAbandoned;
  it->second.fn = nullptr;
  auto pos = std::find(impl_->pending.begin(), impl_->pending.end(), ticket);
  DIVA_CHECK(pos != impl_->pending.end());
  impl_->pending.erase(pos);
  DIVA_COUNTER_ADD_EXEC("taskgroup.abandoned", 1);
  return true;
}

void TaskGroup::AbandonAll() {
  MutexLock lock(impl_->mutex);
  for (uint64_t ticket : impl_->pending) {
    Impl::Item& item = impl_->items.at(ticket);
    item.state = Impl::State::kAbandoned;
    item.fn = nullptr;
    DIVA_COUNTER_ADD_EXEC("taskgroup.abandoned", 1);
  }
  impl_->pending.clear();
}

ScopedLoopCancellation::ScopedLoopCancellation(CancellationToken token) {
  MutexLock lock(g_cancel_mutex);
  previous_ = g_loop_cancel;
  g_loop_cancel = std::move(token);
}

ScopedLoopCancellation::~ScopedLoopCancellation() {
  MutexLock lock(g_cancel_mutex);
  g_loop_cancel = std::move(previous_);
}

CancellationToken CurrentLoopCancellation() {
  MutexLock lock(g_cancel_mutex);
  return g_loop_cancel;
}

}  // namespace diva
