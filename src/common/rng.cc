#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace diva {

namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  ++draws_;
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  DIVA_DCHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection of the biased zone.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DIVA_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0, 1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  have_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfSampler::ZipfSampler(size_t n, double s) : n_(n), s_(s) {
  DIVA_CHECK_MSG(n >= 1, "ZipfSampler domain must be non-empty");
  DIVA_CHECK_MSG(s >= 0.0, "Zipf exponent must be non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
  cdf_.back() = 1.0;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  // First index with cdf_[i] >= u.
  size_t lo = 0;
  size_t hi = n_ - 1;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace diva
