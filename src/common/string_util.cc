#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace diva {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      break;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view input) {
  std::string_view trimmed = Trim(input);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty integer literal");
  }
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ec != std::errc() || ptr != trimmed.data() + trimmed.size()) {
    return Status::InvalidArgument("not an integer: '" + std::string(input) +
                                   "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view input) {
  std::string_view trimmed = Trim(input);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty number literal");
  }
  // std::from_chars for double is flaky across stdlib versions; strtod on a
  // NUL-terminated copy is portable and exact here (inputs are short).
  std::string copy(trimmed);
  char* end = nullptr;
  double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) {
    return Status::InvalidArgument("not a number: '" + std::string(input) +
                                   "'");
  }
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace diva
