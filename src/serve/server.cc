#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <sstream>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/counters.h"
#include "common/failpoint.h"
#include "common/timer.h"
#include "core/incremental.h"
#include "relation/csv.h"
#include "verify/auditor.h"

namespace diva {
namespace serve {

namespace {

/// Recv/send stall guard on accepted sockets: a peer that goes silent
/// mid-frame (or stops reading responses) unblocks the session worker
/// after this long instead of wedging it past the drain grace.
constexpr double kSocketTimeoutSeconds = 1.0;

void SetSocketTimeouts(int fd) {
  timeval tv;
  tv.tv_sec = static_cast<long>(kSocketTimeoutSeconds);
  tv.tv_usec = static_cast<long>(
      (kSocketTimeoutSeconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Result<BaselineAlgorithm> ParseBaseline(const std::string& name) {
  if (name == "kmember") return BaselineAlgorithm::kKMember;
  if (name == "oka") return BaselineAlgorithm::kOka;
  if (name == "mondrian") return BaselineAlgorithm::kMondrian;
  return Status::InvalidArgument("unknown baseline '" + name +
                                 "' (kmember|oka|mondrian)");
}

std::string FormatMs(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", ms);
  return buffer;
}

}  // namespace

Server::Server(Relation base, ConstraintSet constraints, ServerOptions options)
    : constraints_(std::move(constraints)),
      options_(std::move(options)),
      base_(std::make_shared<const Relation>(std::move(base))),
      snapshots_(options_.snapshot_capacity, options_.snapshot_max_age),
      cost_tracker_(options_.initial_cost_ms, options_.ewma_alpha) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (threads_ != nullptr) return Status::Internal("server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::IoError(std::string("bind failed: ") +
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, static_cast<int>(options_.queue_capacity) + 8) <
      0) {
    Status status = Status::IoError(std::string("listen failed: ") +
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }

  // Each loop catches everything: TaskGroup::Wait rethrows a loop's
  // exception into Stop(), which must never fail to join the others.
  auto fenced = [this](void (Server::*loop)()) {
    return [this, loop] {
      try {
        (this->*loop)();
      } catch (const std::exception& e) {
        Log(std::string("service loop died: ") + e.what());
      } catch (...) {
        Log("service loop died: unknown exception");
      }
    };
  };
  threads_ = std::make_unique<TaskGroup>(options_.sessions + 2);
  tickets_.push_back(threads_->Submit(fenced(&Server::AcceptLoop)));
  for (size_t i = 0; i < options_.sessions; ++i) {
    tickets_.push_back(threads_->Submit(fenced(&Server::SessionLoop)));
  }
  tickets_.push_back(threads_->Submit(fenced(&Server::WatchdogLoop)));
  Log("listening on " + options_.host + ":" + std::to_string(port_));
  return Status::OK();
}

void Server::Stop() {
  if (stopped_) return;
  RequestDrain();
  double expected = 0.0;
  drain_started_at_.compare_exchange_strong(expected, MonotonicSeconds(),
                                            std::memory_order_relaxed);
  queue_cv_.NotifyAll();

  if (threads_ != nullptr) {
    // Give queued and in-flight work the drain grace to finish cleanly.
    const double grace_seconds = options_.drain_grace_ms * 1e-3;
    StopWatch watch;
    Mutex nap_mutex;
    CondVar nap_cv;
    while (watch.ElapsedSeconds() < grace_seconds) {
      if (queued() == 0 && inflight() == 0) break;
      MutexLock lock(nap_mutex);
      nap_cv.WaitFor(lock, 0.01);
    }
    // Force-cancel whatever is still running; the anytime pipeline
    // returns promptly and the session still writes an audited
    // (degraded) terminal response.
    {
      MutexLock lock(inflight_mutex_);
      for (auto& [id, entry] : inflight_) {
        if (entry.cancelled) continue;
        entry.token.RequestCancel();
        entry.cancelled = true;
        MutexLock stats_lock(stats_mutex_);
        ++stats_.watchdog_cancels;
      }
    }
    stopping_.store(true, std::memory_order_relaxed);
    queue_cv_.NotifyAll();
    for (uint64_t ticket : tickets_) threads_->Wait(ticket);
    threads_.reset();
    tickets_.clear();
  }

  // Connections accepted but never claimed by a session: close them
  // cleanly so nothing leaks.
  {
    MutexLock lock(queue_mutex_);
    for (int fd : queue_) ::close(fd);
    queue_.clear();
  }
  CloseListener();
  stopped_ = true;
  Log("stopped");
}

ServerStats Server::stats() const {
  MutexLock lock(stats_mutex_);
  return stats_;
}

size_t Server::inflight() const {
  MutexLock lock(inflight_mutex_);
  return inflight_.size();
}

size_t Server::queued() const {
  MutexLock lock(queue_mutex_);
  return queue_.size();
}

void Server::Log(const std::string& message) const {
  if (options_.logger) options_.logger("diva_serverd: " + message);
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed) && !draining()) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, 50);
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    SetSocketTimeouts(fd);
    {
      MutexLock lock(stats_mutex_);
      ++stats_.accepted_connections;
    }
    Status accept_fault = DIVA_FAIL("serve.accept");
    if (!accept_fault.ok()) {
      // Injected intake failure: the connection dies before any request
      // exists, so a clean close keeps the accounting invariant.
      Log("accept fault: " + accept_fault.ToString());
      ::close(fd);
      continue;
    }
    Status enqueue_fault = DIVA_FAIL("serve.enqueue");
    bool overflow = false;
    if (enqueue_fault.ok()) {
      MutexLock lock(queue_mutex_);
      if (queue_.size() >= options_.queue_capacity) {
        overflow = true;
      } else {
        queue_.push_back(fd);
        queue_cv_.NotifyOne();
        fd = -1;  // ownership moved to the queue
      }
    }
    if (fd >= 0) {
      if (overflow) {
        MutexLock lock(stats_mutex_);
        ++stats_.connection_overflow;
      } else {
        Log("enqueue fault: " + enqueue_fault.ToString());
      }
      ::close(fd);
    }
  }
  // Handshakes the kernel already completed sit in the listen backlog;
  // with the acceptor gone no session will ever serve them, and their
  // peers would block forever waiting for a response. Accept and close
  // each one, then close the listener itself so later connects are
  // refused outright — both surface as retryable shed at the client.
  for (;;) {
    pollfd pending;
    pending.fd = listen_fd_;
    pending.events = POLLIN;
    pending.revents = 0;
    if (::poll(&pending, 1, 0) <= 0) break;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    {
      MutexLock lock(stats_mutex_);
      ++stats_.accepted_connections;
      ++stats_.connection_overflow;
    }
    ::close(fd);
  }
  CloseListener();
}

void Server::CloseListener() {
  int fd = listen_fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
}

void Server::SessionLoop() {
  while (true) {
    int fd = -1;
    {
      MutexLock lock(queue_mutex_);
      while (queue_.empty() && !stopping_.load(std::memory_order_relaxed) &&
             !draining()) {
        queue_cv_.WaitFor(lock, 0.05);
      }
      if (!queue_.empty()) {
        fd = queue_.front();
        queue_.pop_front();
      } else {
        return;  // terminal (stop or drain) with nothing queued
      }
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);  // hard stop: clean close
      continue;
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void Server::HandleConnection(int fd) {
  while (true) {
    if (stopping_.load(std::memory_order_relaxed)) return;
    if (draining()) {
      const double started = drain_started_at_.load(std::memory_order_relaxed);
      if (started > 0.0 && (MonotonicSeconds() - started) * 1e3 >
                               options_.drain_grace_ms) {
        return;  // drain grace over: close instead of serving more
      }
    }
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, 50);
    if (ready < 0) return;
    if (ready == 0) continue;
    auto frame = ReadFrame(fd, options_.max_frame_bytes);
    if (!frame.ok()) {
      // NotFound = the peer closed between frames (normal); anything
      // else is a transport fault — either way the connection is done
      // and no request was admitted, so closing is clean.
      if (frame.status().code() != StatusCode::kNotFound) {
        Log("frame read failed: " + frame.status().ToString());
      }
      return;
    }
    auto request = ParseRequest(*frame);
    if (!request.ok()) {
      {
        MutexLock lock(stats_mutex_);
        ++stats_.protocol_errors;
      }
      if (!Respond(fd, Response::Error(request.status()))) return;
      continue;
    }
    {
      MutexLock lock(stats_mutex_);
      ++stats_.requests;
    }
    if (!HandleRequest(fd, *request)) return;
  }
}

bool Server::HandleRequest(int fd, const Request& request) {
  Response response;
  if (request.verb == "ping") {
    response.fields["server"] = "diva";
  } else if (request.verb == "stats") {
    response = HandleStats(request);
  } else if (request.verb == "fetch") {
    response = HandleFetch(request);
  } else if (request.verb == "anonymize") {
    response = HandleAnonymize(request);
  } else if (request.verb == "verify") {
    response = HandleVerify(request);
  } else if (request.verb == "update") {
    response = HandleUpdate(request);
  } else {
    response = Response::Error(Status::InvalidArgument(
        "unknown verb '" + request.verb +
        "' (ping|stats|fetch|anonymize|verify|update)"));
  }
  // A failed write ends the connection (the caller closes it): the peer
  // is left with a hangup instead of a silent socket, which its client
  // maps to a retryable shed.
  return Respond(fd, response);
}

bool Server::Respond(int fd, const Response& response) {
  Status fault = DIVA_FAIL("serve.respond");
  Status written =
      fault.ok() ? WriteFrame(fd, EncodeResponse(response)) : fault;
  MutexLock lock(stats_mutex_);
  if (written.ok()) {
    ++stats_.responses;
    return true;
  }
  ++stats_.response_failures;
  return false;
}

uint64_t Server::RegisterInflight(int64_t deadline_ms,
                                  CancellationToken* token) {
  MutexLock lock(inflight_mutex_);
  const uint64_t id = next_request_id_++;
  Inflight entry;
  entry.token = CancellationToken::Manual();
  entry.started_at = MonotonicSeconds();
  entry.budget_ms = deadline_ms >= 0 ? static_cast<double>(deadline_ms) +
                                           options_.deadline_grace_ms
                                     : options_.wedge_timeout_ms;
  *token = entry.token;
  inflight_.emplace(id, std::move(entry));
  return id;
}

void Server::UnregisterInflight(uint64_t id) {
  MutexLock lock(inflight_mutex_);
  inflight_.erase(id);
}

Response Server::AdmitAndRun(
    const Request& request,
    const std::function<Response(CancellationToken)>& run) {
  auto deadline_ms = request.IntParam("deadline_ms", -1);
  if (!deadline_ms.ok()) return Response::Error(deadline_ms.status());

  Status admission_fault = DIVA_FAIL("serve.admission");
  AdmissionDecision decision;
  if (!admission_fault.ok()) {
    decision.admit = false;
    decision.reason = "admission check failed: " + admission_fault.message();
  } else {
    decision =
        DecideAdmission(queued(), inflight(), options_.queue_capacity,
                        cost_tracker_.EstimateMs(), *deadline_ms, draining());
  }
  if (!decision.admit) {
    {
      MutexLock lock(stats_mutex_);
      ++stats_.shed;
    }
    Response response = Response::Error(Status::Unavailable(decision.reason));
    response.fields["predicted_wait_ms"] = FormatMs(decision.predicted_wait_ms);
    return response;
  }
  {
    MutexLock lock(stats_mutex_);
    ++stats_.admitted;
  }

  CancellationToken watchdog_token;
  const uint64_t id = RegisterInflight(*deadline_ms, &watchdog_token);
  // The watchdog (or a force-drain) may trip the token in the window
  // between admission and dispatch; skip the run entirely — the entry is
  // unregistered, so no counter leaks and inflight() returns to zero.
  if (watchdog_token.Cancelled()) {
    UnregisterInflight(id);
    MutexLock lock(stats_mutex_);
    ++stats_.shed;
    return Response::Error(
        Status::Unavailable("request cancelled before dispatch"));
  }
  Status execute_fault = DIVA_FAIL("serve.execute");
  if (!execute_fault.ok()) {
    UnregisterInflight(id);
    return Response::Error(execute_fault);
  }
  const Deadline deadline = *deadline_ms >= 0
                                ? Deadline::AfterMillis(*deadline_ms)
                                : Deadline::Infinite();
  CancellationToken request_token =
      CancellationToken::WithDeadlineAndParent(deadline, watchdog_token);
  StopWatch watch;
  Response response = run(request_token);
  cost_tracker_.Record(watch.ElapsedMillis());
  UnregisterInflight(id);
  return response;
}

Result<Server::ReadLease> Server::BeginRead(const CancellationToken& token) {
  MutexLock lock(state_mutex_);
  while (update_active_) {
    if (token.Cancelled()) {
      return Status::Unavailable(
          "cancelled while waiting for an update to finish");
    }
    state_cv_.WaitFor(lock, 0.01);
  }
  ++active_leases_;
  return ReadLease(this, base_);
}

void Server::EndRead() {
  MutexLock lock(state_mutex_);
  --active_leases_;
  state_cv_.NotifyAll();
}

Status Server::BeginUpdate(const CancellationToken& token) {
  MutexLock lock(state_mutex_);
  while (update_active_ || active_leases_ > 0) {
    if (token.Cancelled()) {
      return Status::Unavailable(
          "cancelled while waiting for exclusive served-state access");
    }
    state_cv_.WaitFor(lock, 0.01);
  }
  update_active_ = true;
  return Status::OK();
}

void Server::EndUpdate() {
  MutexLock lock(state_mutex_);
  update_active_ = false;
  state_cv_.NotifyAll();
}

Response Server::HandleAnonymize(const Request& request) {
  return AdmitAndRun(request, [&](CancellationToken token) -> Response {
    DivaOptions diva_options;
    auto k = request.IntParam("k", static_cast<int64_t>(diva_options.k));
    if (!k.ok()) return Response::Error(k.status());
    if (*k < 1) {
      return Response::Error(Status::InvalidArgument("k must be >= 1"));
    }
    auto l = request.IntParam("l", 0);
    if (!l.ok()) return Response::Error(l.status());
    auto t = request.DoubleParam("t", 1.0);
    if (!t.ok()) return Response::Error(t.status());
    auto seed = request.IntParam("seed",
                                 static_cast<int64_t>(options_.seed));
    if (!seed.ok()) return Response::Error(seed.status());
    auto baseline = ParseBaseline(request.Param("baseline", "kmember"));
    if (!baseline.ok()) return Response::Error(baseline.status());
    auto shard =
        request.IntParam("shard", options_.pipeline_shard ? 1 : 0);
    if (!shard.ok()) return Response::Error(shard.status());

    diva_options.k = static_cast<size_t>(*k);
    diva_options.l_diversity = static_cast<size_t>(*l);
    diva_options.t_closeness = *t;
    diva_options.seed = static_cast<uint64_t>(*seed);
    diva_options.baseline = *baseline;
    diva_options.threads = options_.pipeline_threads;
    // Execution knob only (core/shard.h): a request gets byte-identical
    // bytes with sharding on or off, so per-request overrides are safe.
    diva_options.shard = *shard != 0;
    // The serving contract: results are audited before they leave the
    // process, degraded or not. The self-audit is never skipped by a
    // deadline (core/diva.cc), so a cancelled run still re-proves its
    // output before we publish and respond.
    diva_options.audit = true;
    diva_options.strict = false;
    diva_options.deadline_ms = 0;  // the request token carries the budget
    diva_options.cancel = token;

    // The lease keeps `update` from swapping the base (or interning into
    // its shared dictionaries) while this run reads it.
    auto lease = BeginRead(token);
    if (!lease.ok()) return Response::Error(lease.status());
    auto result = RunDiva(lease->relation(), constraints_, diva_options);
    if (!result.ok()) return Response::Error(result.status());

    const DivaReport& report = result->report;
    const bool degraded = report.deadline_exceeded ||
                          report.baseline_degraded ||
                          report.integrate_skipped || report.privacy_truncated;
    Snapshot snapshot(std::move(result->relation));
    snapshot.label = request.verb + " k=" + std::to_string(*k);
    snapshot.source = lease->shared();
    snapshot.k = static_cast<size_t>(*k);
    snapshot.waived_constraints = report.unsatisfied;
    std::sort(snapshot.waived_constraints.begin(),
              snapshot.waived_constraints.end());
    snapshot.audited = report.audited;
    snapshot.degraded = degraded;
    const size_t rows = snapshot.relation.NumRows();
    auto published = snapshots_.Publish(std::move(snapshot));
    if (!published.ok()) return Response::Error(published.status());

    {
      MutexLock lock(stats_mutex_);
      ++stats_.snapshots_published;
      if (degraded) ++stats_.degraded;
    }
    Response response;
    response.fields["snapshot"] = std::to_string(*published);
    response.fields["rows"] = std::to_string(rows);
    response.fields["audited"] = report.audited ? "1" : "0";
    response.fields["degraded"] = degraded ? "1" : "0";
    response.fields["deadline_exceeded"] =
        report.deadline_exceeded ? "1" : "0";
    response.fields["baseline_degraded"] =
        report.baseline_degraded ? "1" : "0";
    response.fields["integrate_skipped"] =
        report.integrate_skipped ? "1" : "0";
    response.fields["privacy_truncated"] =
        report.privacy_truncated ? "1" : "0";
    response.fields["unsatisfied"] =
        std::to_string(report.unsatisfied.size());
    response.fields["suppressed_cells"] =
        std::to_string(report.repair_cells);
    return response;
  });
}

Response Server::HandleVerify(const Request& request) {
  return AdmitAndRun(request, [&](CancellationToken token) -> Response {
    auto id = request.IntParam(
        "snapshot", static_cast<int64_t>(snapshots_.latest_id()));
    if (!id.ok()) return Response::Error(id.status());
    // The pin keeps retention from evicting the snapshot mid-audit.
    auto snapshot = snapshots_.Acquire(static_cast<uint64_t>(*id));
    if (!snapshot) {
      return Response::Error(Status::NotFound(
          "no snapshot " + std::to_string(*id) +
          " (latest=" + std::to_string(snapshots_.latest_id()) + ")"));
    }
    auto k = request.IntParam("k", static_cast<int64_t>(snapshot->k));
    if (!k.ok()) return Response::Error(k.status());

    // The audit replays against the base the snapshot was produced from
    // (it may predate an update); the lease still blocks concurrent
    // dictionary interning, which old bases share with the live one.
    auto lease = BeginRead(token);
    if (!lease.ok()) return Response::Error(lease.status());
    const Relation& original = snapshot->source != nullptr
                                   ? *snapshot->source
                                   : lease->relation();
    AuditOptions audit_options;
    audit_options.waived_constraints = snapshot->waived_constraints;
    auto audit = AuditAnonymization(original, snapshot->relation,
                                    static_cast<size_t>(*k), constraints_,
                                    audit_options);
    if (!audit.ok()) return Response::Error(audit.status());

    Response response;
    response.fields["snapshot"] = std::to_string(snapshot->id);
    response.fields["verdict"] = audit->ok() ? "pass" : "fail";
    response.fields["violations"] = std::to_string(audit->violations.size());
    response.fields["groups"] = std::to_string(audit->stats.num_groups);
    response.fields["min_group"] =
        std::to_string(audit->stats.min_group_size);
    response.fields["added_stars"] = std::to_string(audit->stats.added_stars);
    response.fields["degraded"] = snapshot->degraded ? "1" : "0";
    return response;
  });
}

Response Server::HandleFetch(const Request& request) {
  auto id = request.IntParam("snapshot",
                             static_cast<int64_t>(snapshots_.latest_id()));
  if (!id.ok()) return Response::Error(id.status());
  // Pinned fetch: retention cannot evict this snapshot while its CSV is
  // being written out.
  auto snapshot = snapshots_.Acquire(static_cast<uint64_t>(*id));
  if (!snapshot) {
    return Response::Error(
        Status::NotFound("no snapshot " + std::to_string(*id)));
  }
  // Published relations share dictionaries with the served base; the
  // lease keeps an update from interning into them mid-encode.
  auto lease = BeginRead(CancellationToken());
  if (!lease.ok()) return Response::Error(lease.status());
  std::ostringstream csv;
  Status written = WriteCsv(snapshot->relation, csv);
  if (!written.ok()) return Response::Error(written);
  Response response;
  response.fields["snapshot"] = std::to_string(snapshot->id);
  response.fields["rows"] = std::to_string(snapshot->relation.NumRows());
  response.fields["audited"] = snapshot->audited ? "1" : "0";
  response.fields["degraded"] = snapshot->degraded ? "1" : "0";
  response.body = csv.str();
  return response;
}

Response Server::HandleUpdate(const Request& request) {
  return AdmitAndRun(request, [&](CancellationToken token) -> Response {
    if (request.body.empty()) {
      return Response::Error(Status::InvalidArgument(
          "update needs a delta body: `- <row>` / `+ <csv row>` lines "
          "(docs/serving.md)"));
    }
    auto delta = ParseDeltaFile(request.body);
    if (!delta.ok()) return Response::Error(delta.status());

    DivaOptions diva_options;
    auto k = request.IntParam("k", static_cast<int64_t>(diva_options.k));
    if (!k.ok()) return Response::Error(k.status());
    if (*k < 1) {
      return Response::Error(Status::InvalidArgument("k must be >= 1"));
    }
    auto l = request.IntParam("l", 0);
    if (!l.ok()) return Response::Error(l.status());
    auto t = request.DoubleParam("t", 1.0);
    if (!t.ok()) return Response::Error(t.status());
    auto seed = request.IntParam("seed",
                                 static_cast<int64_t>(options_.seed));
    if (!seed.ok()) return Response::Error(seed.status());
    auto baseline = ParseBaseline(request.Param("baseline", "kmember"));
    if (!baseline.ok()) return Response::Error(baseline.status());

    diva_options.k = static_cast<size_t>(*k);
    diva_options.l_diversity = static_cast<size_t>(*l);
    diva_options.t_closeness = *t;
    diva_options.seed = static_cast<uint64_t>(*seed);
    diva_options.baseline = *baseline;
    diva_options.threads = options_.pipeline_threads;
    // Sharded + incremental so the run captures a pipeline snapshot the
    // next delta can chain from (neither changes response bytes). An
    // update whose params differ from the prior update's simply finds
    // every component dirty — correct, just cold-cost.
    diva_options.shard = true;
    diva_options.incremental = true;
    diva_options.audit = true;
    diva_options.strict = false;
    diva_options.deadline_ms = 0;  // the request token carries the budget
    diva_options.cancel = token;

    Status exclusive = BeginUpdate(token);
    if (!exclusive.ok()) return Response::Error(exclusive);
    Response response = RunUpdate(*delta, diva_options);
    EndUpdate();
    return response;
  });
}

Response Server::RunUpdate(const DeltaBatch& delta, DivaOptions& options) {
  std::shared_ptr<const Relation> base;
  std::shared_ptr<const PipelineSnapshot> prior;
  {
    MutexLock lock(state_mutex_);
    base = base_;
    prior = prior_;
  }

  // Incremental when the last update's snapshot chains; cold otherwise
  // (first update, or the chain was reset by a degraded run). Either
  // path produces bytes identical to a cold run on the post-delta
  // relation (core/incremental.h).
  const bool incremental = prior != nullptr;
  std::shared_ptr<const Relation> post;
  uint64_t shards_reused = 0;
  Result<DivaResult> run = [&]() -> Result<DivaResult> {
    if (incremental) {
      std::vector<counters::Sample> before = counters::Snapshot();
      auto replayed = ApplyDelta(*prior, delta, options);
      if (replayed.ok()) {
        for (const counters::Sample& sample :
             counters::Delta(before, counters::Snapshot())) {
          if (sample.name == "incremental.shards_reused") {
            shards_reused = sample.value;
          }
        }
      }
      return replayed;
    }
    DIVA_ASSIGN_OR_RETURN(Relation applied, ApplyDeltaToRelation(*base, delta));
    post = std::make_shared<const Relation>(std::move(applied));
    return RunDiva(*post, constraints_, options);
  }();
  if (!run.ok()) return Response::Error(run.status());

  // The base the swapped state serves next: the captured snapshot's
  // input when the run produced one (aliased, not copied), recomputed
  // otherwise — ApplyDeltaToRelation is deterministic, so both name the
  // same relation.
  if (post == nullptr) {
    if (run->snapshot != nullptr && run->snapshot->input.has_value()) {
      post = std::shared_ptr<const Relation>(run->snapshot,
                                             &*run->snapshot->input);
    } else {
      auto applied = ApplyDeltaToRelation(*base, delta);
      if (!applied.ok()) return Response::Error(applied.status());
      post = std::make_shared<const Relation>(std::move(*applied));
    }
  }

  // Publish-or-refuse: nothing below mutates served state until the
  // audited snapshot is actually in the store. Any failure — audit,
  // publication fault, a fully pinned store — leaves the old base (and
  // the old reuse chain) serving.
  const DivaReport& report = run->report;
  if (!report.audited) {
    return Response::Error(
        Status::Internal("refusing to publish an unaudited update"));
  }
  const bool degraded = report.deadline_exceeded || report.baseline_degraded ||
                        report.integrate_skipped || report.privacy_truncated;
  const size_t rows = run->relation.NumRows();
  Snapshot snapshot(std::move(run->relation));
  snapshot.label = "update -" + std::to_string(delta.deleted.size()) + " +" +
                   std::to_string(delta.inserted.size()) +
                   " k=" + std::to_string(options.k);
  snapshot.source = post;
  snapshot.k = options.k;
  snapshot.waived_constraints = report.unsatisfied;
  std::sort(snapshot.waived_constraints.begin(),
            snapshot.waived_constraints.end());
  snapshot.audited = report.audited;
  snapshot.degraded = degraded;
  auto published = snapshots_.Publish(std::move(snapshot));
  if (!published.ok()) return Response::Error(published.status());

  {
    MutexLock lock(state_mutex_);
    base_ = std::move(post);
    prior_ = run->snapshot;  // null resets the chain to cold
  }
  {
    MutexLock lock(stats_mutex_);
    ++stats_.snapshots_published;
    ++stats_.updates;
    if (degraded) ++stats_.degraded;
  }

  Response response;
  response.fields["snapshot"] = std::to_string(*published);
  response.fields["rows"] = std::to_string(rows);
  response.fields["rows_deleted"] = std::to_string(delta.deleted.size());
  response.fields["rows_inserted"] = std::to_string(delta.inserted.size());
  response.fields["incremental"] = incremental ? "1" : "0";
  response.fields["shards_reused"] = std::to_string(shards_reused);
  response.fields["audited"] = report.audited ? "1" : "0";
  response.fields["degraded"] = degraded ? "1" : "0";
  response.fields["unsatisfied"] = std::to_string(report.unsatisfied.size());
  response.fields["suppressed_cells"] = std::to_string(report.repair_cells);
  return response;
}

Response Server::HandleStats(const Request&) {
  ServerStats snapshot = stats();
  Response response;
  response.fields["accepted_connections"] =
      std::to_string(snapshot.accepted_connections);
  response.fields["connection_overflow"] =
      std::to_string(snapshot.connection_overflow);
  response.fields["requests"] = std::to_string(snapshot.requests);
  response.fields["protocol_errors"] =
      std::to_string(snapshot.protocol_errors);
  response.fields["admitted"] = std::to_string(snapshot.admitted);
  response.fields["shed"] = std::to_string(snapshot.shed);
  response.fields["responses"] = std::to_string(snapshot.responses);
  response.fields["response_failures"] =
      std::to_string(snapshot.response_failures);
  response.fields["degraded"] = std::to_string(snapshot.degraded);
  response.fields["watchdog_cancels"] =
      std::to_string(snapshot.watchdog_cancels);
  response.fields["snapshots_published"] =
      std::to_string(snapshot.snapshots_published);
  response.fields["updates"] = std::to_string(snapshot.updates);
  response.fields["snapshots"] = std::to_string(snapshots_.size());
  response.fields["snapshots_evicted"] = std::to_string(snapshots_.evicted());
  response.fields["queued"] = std::to_string(queued());
  response.fields["inflight"] = std::to_string(inflight());
  response.fields["cost_estimate_ms"] =
      FormatMs(cost_tracker_.EstimateMs());
  response.fields["draining"] = draining() ? "1" : "0";
  return response;
}

void Server::WatchdogLoop() {
  Mutex nap_mutex;
  CondVar nap_cv;
  while (!stopping_.load(std::memory_order_relaxed)) {
    {
      MutexLock lock(nap_mutex);
      nap_cv.WaitFor(lock, options_.watchdog_poll_ms * 1e-3);
    }
    const double now = MonotonicSeconds();
    if (draining()) {
      double expected = 0.0;
      drain_started_at_.compare_exchange_strong(expected, now,
                                                std::memory_order_relaxed);
    }
    const double drain_started =
        drain_started_at_.load(std::memory_order_relaxed);
    const bool force_drain =
        draining() && drain_started > 0.0 &&
        (now - drain_started) * 1e3 > options_.drain_grace_ms;
    MutexLock lock(inflight_mutex_);
    for (auto& [id, entry] : inflight_) {
      if (entry.cancelled) continue;
      const double elapsed_ms = (now - entry.started_at) * 1e3;
      if (force_drain || elapsed_ms > entry.budget_ms) {
        entry.token.RequestCancel();
        entry.cancelled = true;
        MutexLock stats_lock(stats_mutex_);
        ++stats_.watchdog_cancels;
        Log("watchdog cancelled request " + std::to_string(id) + " after " +
            FormatMs(elapsed_ms) + "ms (budget " + FormatMs(entry.budget_ms) +
            "ms" + (force_drain ? ", drain" : "") + ")");
      }
    }
  }
}

}  // namespace serve
}  // namespace diva
