#ifndef DIVA_SERVE_SNAPSHOT_H_
#define DIVA_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "relation/relation.h"

namespace diva {
namespace serve {

/// An immutable published anonymization result. Everything in here is
/// frozen at publish time; readers hold a shared_ptr<const Snapshot> and
/// never observe mutation.
struct Snapshot {
  /// Relation has no default state, so neither does a Snapshot: one is
  /// born around the relation it publishes.
  explicit Snapshot(Relation published) : relation(std::move(published)) {}

  /// Dense id assigned at publish time, starting at 1 (0 = "none").
  uint64_t id = 0;
  /// Provenance: the request line that produced this snapshot.
  std::string label;
  Relation relation;
  /// The base relation this snapshot anonymized. `verify` replays the
  /// audit against it, so a snapshot published before an `update` swapped
  /// the served base stays verifiable. Null when published outside the
  /// server's handlers (tests driving the store directly).
  std::shared_ptr<const Relation> source;
  /// The k the snapshot was anonymized for (verify re-checks against it).
  size_t k = 0;
  /// Constraint indices the producing run reported unsatisfied — the
  /// audit waiver list a later `verify` request must replay.
  std::vector<size_t> waived_constraints;
  /// True iff the producing run's self-audit passed. The server never
  /// publishes unaudited relations, so this is always true for snapshots
  /// that exist — kept explicit so the invariant is checkable.
  bool audited = false;
  /// The producing run was cut short (deadline or watchdog) and the
  /// snapshot is the anytime best effort.
  bool degraded = false;
};

class SnapshotStore;

/// RAII pin on one published snapshot: while any pin on an id is alive,
/// retention (age or capacity eviction) will not remove that entry — a
/// `fetch` streaming a snapshot out never has it disappear mid-read.
/// Move-only; an empty pin (the id was never published, or was already
/// evicted) is falsy. The pinned data itself is additionally kept alive
/// by the shared_ptr, so even a post-eviction holder reads safely; the
/// pin's job is id stability, not lifetime.
class SnapshotPin {
 public:
  SnapshotPin() = default;
  SnapshotPin(SnapshotPin&& other) noexcept
      : store_(other.store_), snapshot_(std::move(other.snapshot_)) {
    other.store_ = nullptr;
  }
  SnapshotPin& operator=(SnapshotPin&& other) noexcept {
    if (this != &other) {
      Release();
      store_ = other.store_;
      snapshot_ = std::move(other.snapshot_);
      other.store_ = nullptr;
    }
    return *this;
  }
  SnapshotPin(const SnapshotPin&) = delete;
  SnapshotPin& operator=(const SnapshotPin&) = delete;
  ~SnapshotPin() { Release(); }

  explicit operator bool() const { return snapshot_ != nullptr; }
  const Snapshot& operator*() const { return *snapshot_; }
  const Snapshot* operator->() const { return snapshot_.get(); }
  const std::shared_ptr<const Snapshot>& get() const { return snapshot_; }

 private:
  friend class SnapshotStore;
  SnapshotPin(SnapshotStore* store, std::shared_ptr<const Snapshot> snapshot)
      : store_(store), snapshot_(std::move(snapshot)) {}
  void Release();

  SnapshotStore* store_ = nullptr;
  std::shared_ptr<const Snapshot> snapshot_;
};

/// Versioned store of published snapshots with crash-safe publication:
/// a snapshot is fully constructed *before* it becomes reachable, and
/// insertion under the lock is the single atomic publication point. A
/// failure (or injected fault — failpoint serve.publish) anywhere before
/// that point leaves the store exactly as it was; no request can ever
/// fetch a half-written snapshot.
///
/// Retention is swept at each publish, never in the background: age is
/// counted in publish generations, not wall time, so which snapshots a
/// request sequence retains is deterministic and replayable. Pinned
/// entries (SnapshotPin) are skipped by both sweeps and reconsidered at
/// the next publish after their pins drop.
class SnapshotStore {
 public:
  /// `capacity` bounds retained snapshots by count; `max_age` bounds
  /// them by publish generations — after each publish, unpinned
  /// snapshots published `max_age` or more publishes ago are evicted
  /// (0 disables the age bound). Publishing into a full store evicts
  /// the oldest unpinned snapshot; it is refused with kUnavailable only
  /// when every retained snapshot is pinned.
  explicit SnapshotStore(size_t capacity, uint64_t max_age = 0)
      : capacity_(capacity), max_age_(max_age) {}

  /// Publishes atomically and returns the assigned id.
  [[nodiscard]] Result<uint64_t> Publish(Snapshot snapshot);

  /// The published snapshot with this id, or null.
  std::shared_ptr<const Snapshot> Find(uint64_t id) const;

  /// Find + pin in one step: the returned pin blocks retention from
  /// evicting this snapshot until the pin is destroyed. Empty when `id`
  /// is not published (eviction included).
  [[nodiscard]] SnapshotPin Acquire(uint64_t id);

  /// Highest published id (0 when empty).
  uint64_t latest_id() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Snapshots retired by retention (age or capacity) so far.
  uint64_t evicted() const;

 private:
  friend class SnapshotPin;

  struct Entry {
    std::shared_ptr<const Snapshot> snapshot;
    size_t pins = 0;
  };

  void Unpin(uint64_t id);

  const size_t capacity_;
  const uint64_t max_age_;
  mutable Mutex mutex_;
  uint64_t next_id_ DIVA_GUARDED_BY(mutex_) = 1;
  uint64_t evicted_ DIVA_GUARDED_BY(mutex_) = 0;
  std::map<uint64_t, Entry> snapshots_ DIVA_GUARDED_BY(mutex_);
};

}  // namespace serve
}  // namespace diva

#endif  // DIVA_SERVE_SNAPSHOT_H_
