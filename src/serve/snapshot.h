#ifndef DIVA_SERVE_SNAPSHOT_H_
#define DIVA_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "relation/relation.h"

namespace diva {
namespace serve {

/// An immutable published anonymization result. Everything in here is
/// frozen at publish time; readers hold a shared_ptr<const Snapshot> and
/// never observe mutation.
struct Snapshot {
  /// Relation has no default state, so neither does a Snapshot: one is
  /// born around the relation it publishes.
  explicit Snapshot(Relation published) : relation(std::move(published)) {}

  /// Dense id assigned at publish time, starting at 1 (0 = "none").
  uint64_t id = 0;
  /// Provenance: the request line that produced this snapshot.
  std::string label;
  Relation relation;
  /// The k the snapshot was anonymized for (verify re-checks against it).
  size_t k = 0;
  /// Constraint indices the producing run reported unsatisfied — the
  /// audit waiver list a later `verify` request must replay.
  std::vector<size_t> waived_constraints;
  /// True iff the producing run's self-audit passed. The server never
  /// publishes unaudited relations, so this is always true for snapshots
  /// that exist — kept explicit so the invariant is checkable.
  bool audited = false;
  /// The producing run was cut short (deadline or watchdog) and the
  /// snapshot is the anytime best effort.
  bool degraded = false;
};

/// Versioned store of published snapshots with crash-safe publication:
/// a snapshot is fully constructed *before* it becomes reachable, and
/// insertion under the lock is the single atomic publication point. A
/// failure (or injected fault — failpoint serve.publish) anywhere before
/// that point leaves the store exactly as it was; no request can ever
/// fetch a half-written snapshot.
class SnapshotStore {
 public:
  /// `capacity` bounds how many snapshots are retained; publishing into
  /// a full store is refused with kUnavailable (snapshot GC is a
  /// follow-on — see ROADMAP.md).
  explicit SnapshotStore(size_t capacity) : capacity_(capacity) {}

  /// Publishes atomically and returns the assigned id.
  [[nodiscard]] Result<uint64_t> Publish(Snapshot snapshot);

  /// The published snapshot with this id, or null.
  std::shared_ptr<const Snapshot> Find(uint64_t id) const;

  /// Highest published id (0 when empty).
  uint64_t latest_id() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  uint64_t next_id_ DIVA_GUARDED_BY(mutex_) = 1;
  std::map<uint64_t, std::shared_ptr<const Snapshot>> snapshots_
      DIVA_GUARDED_BY(mutex_);
};

}  // namespace serve
}  // namespace diva

#endif  // DIVA_SERVE_SNAPSHOT_H_
