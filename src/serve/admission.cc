#include "serve/admission.h"

namespace diva {
namespace serve {

AdmissionDecision DecideAdmission(size_t queued, size_t inflight,
                                  size_t max_queue, double cost_estimate_ms,
                                  int64_t deadline_ms, bool draining) {
  AdmissionDecision decision;
  decision.predicted_wait_ms =
      static_cast<double>(queued + inflight) * cost_estimate_ms;
  if (draining) {
    decision.admit = false;
    decision.reason = "server is draining";
    return decision;
  }
  if (queued >= max_queue) {
    decision.admit = false;
    decision.reason = "queue full (" + std::to_string(queued) + "/" +
                      std::to_string(max_queue) + ")";
    return decision;
  }
  if (deadline_ms >= 0 &&
      decision.predicted_wait_ms > static_cast<double>(deadline_ms)) {
    decision.admit = false;
    decision.reason =
        "predicted wait " + std::to_string(decision.predicted_wait_ms) +
        "ms exceeds the " + std::to_string(deadline_ms) + "ms deadline";
    return decision;
  }
  return decision;
}

}  // namespace serve
}  // namespace diva
