#ifndef DIVA_SERVE_ADMISSION_H_
#define DIVA_SERVE_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace diva {
namespace serve {

/// Admission control for diva_serverd: reject work the server provably
/// cannot finish in time *before* it consumes a slot, instead of letting
/// a deadline-doomed request occupy a session worker and then time out
/// anyway. The decision itself is a pure function (DecideAdmission) so
/// the policy is unit-testable without a socket in sight.

/// Thread-safe exponentially weighted moving average of observed
/// per-request service cost, in milliseconds. Seeded with a prior so the
/// very first request has an estimate to decide with.
class CostTracker {
 public:
  /// `initial_ms` is the prior before any sample; `alpha` in (0, 1] is
  /// the weight of the newest sample.
  CostTracker(double initial_ms, double alpha)
      : alpha_(alpha), estimate_ms_(initial_ms) {}

  void Record(double cost_ms) {
    MutexLock lock(mutex_);
    estimate_ms_ = alpha_ * cost_ms + (1.0 - alpha_) * estimate_ms_;
  }

  double EstimateMs() const {
    MutexLock lock(mutex_);
    return estimate_ms_;
  }

 private:
  const double alpha_;
  mutable Mutex mutex_;
  double estimate_ms_ DIVA_GUARDED_BY(mutex_);
};

/// Everything the admission decision saw, for the response message and
/// the shed-rate accounting.
struct AdmissionDecision {
  bool admit = true;
  /// Cost model: requests ahead of this one (queued + inflight) times the
  /// observed per-request cost. The request's own service time is *not*
  /// added — an empty server admits even an already-expired deadline and
  /// lets the anytime pipeline produce the audited degraded response.
  double predicted_wait_ms = 0.0;
  /// Empty when admitted, otherwise why the request was shed.
  std::string reason;
};

/// The pure admission policy. `deadline_ms` < 0 means the request has no
/// deadline; >= 0 is its wall budget (0 = already expired — still
/// admitted on an idle server, see AdmissionDecision). Rejections, in
/// order of precedence: draining, queue full, predicted wait exceeding
/// the deadline.
AdmissionDecision DecideAdmission(size_t queued, size_t inflight,
                                  size_t max_queue, double cost_estimate_ms,
                                  int64_t deadline_ms, bool draining);

}  // namespace serve
}  // namespace diva

#endif  // DIVA_SERVE_ADMISSION_H_
