#ifndef DIVA_SERVE_CLIENT_H_
#define DIVA_SERVE_CLIENT_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "serve/protocol.h"

namespace diva {
namespace serve {

/// Minimal blocking client for diva_serverd's framed protocol: one
/// connection, one request in flight at a time. Used by diva_loadgen and
/// the serve tests; not thread-safe (give each worker its own Client).
class Client {
 public:
  /// Connects to `host:port`. The connection stays open until
  /// destruction.
  [[nodiscard]] static Result<Client> Connect(const std::string& host,
                                              int port);

  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request and blocks for its response. A server that sheds
  /// the connection (clean close before responding) surfaces as
  /// kUnavailable — the retryable code — so callers treat "closed on us"
  /// and "told us unavailable" identically.
  [[nodiscard]] Result<Response> Call(const Request& request);

  bool connected() const { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace serve
}  // namespace diva

#endif  // DIVA_SERVE_CLIENT_H_
