#include "serve/protocol.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>

#include "common/failpoint.h"

namespace diva {
namespace serve {

namespace {

/// send() with MSG_NOSIGNAL so a hung-up peer yields EPIPE instead of a
/// process-killing SIGPIPE, looping over short writes and EINTR.
Status SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// recv() into `data`, looping over short reads and EINTR. Returns the
/// bytes read; fewer than `size` only at EOF.
Result<size_t> RecvAll(int fd, char* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) break;  // EOF
    got += static_cast<size_t>(n);
  }
  return got;
}

/// Single-token values keep the header line splittable on spaces.
bool IsToken(const std::string& value) {
  for (char c : value) {
    if (c == ' ' || c == '\n' || c == '\r') return false;
  }
  return true;
}

}  // namespace

Status WriteFrame(int fd, const std::string& payload) {
  const uint32_t size = static_cast<uint32_t>(payload.size());
  char header[4] = {static_cast<char>((size >> 24) & 0xff),
                    static_cast<char>((size >> 16) & 0xff),
                    static_cast<char>((size >> 8) & 0xff),
                    static_cast<char>(size & 0xff)};
  DIVA_RETURN_IF_ERROR(SendAll(fd, header, sizeof(header)));
  return SendAll(fd, payload.data(), payload.size());
}

Result<std::string> ReadFrame(int fd, size_t max_bytes) {
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("serve.frame.read"));
  char header[4];
  DIVA_ASSIGN_OR_RETURN(size_t header_got, RecvAll(fd, header, sizeof(header)));
  if (header_got == 0) {
    // Clean close between frames: the sentinel callers test for.
    return Status::NotFound("peer closed the connection");
  }
  if (header_got < sizeof(header)) {
    return Status::IoError("connection closed mid frame header");
  }
  const uint32_t size = (static_cast<uint32_t>(static_cast<unsigned char>(
                             header[0]))
                         << 24) |
                        (static_cast<uint32_t>(static_cast<unsigned char>(
                             header[1]))
                         << 16) |
                        (static_cast<uint32_t>(static_cast<unsigned char>(
                             header[2]))
                         << 8) |
                        static_cast<uint32_t>(static_cast<unsigned char>(
                            header[3]));
  if (size > max_bytes) {
    return Status::IoError("frame of " + std::to_string(size) +
                           " bytes exceeds the " + std::to_string(max_bytes) +
                           "-byte cap");
  }
  std::string payload(size, '\0');
  if (size > 0) {
    DIVA_ASSIGN_OR_RETURN(size_t got, RecvAll(fd, payload.data(), size));
    if (got < size) return Status::IoError("connection closed mid frame body");
  }
  return payload;
}

std::string Request::Param(const std::string& key,
                           const std::string& fallback) const {
  auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

Result<int64_t> Request::IntParam(const std::string& key,
                                  int64_t fallback) const {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("param " + key + "='" + it->second +
                                   "' is not an integer");
  }
  return static_cast<int64_t>(value);
}

Result<double> Request::DoubleParam(const std::string& key,
                                    double fallback) const {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("param " + key + "='" + it->second +
                                   "' is not a number");
  }
  return value;
}

Result<Request> ParseRequest(const std::string& payload) {
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("serve.request.parse"));
  Request request;
  size_t header_end = payload.find('\n');
  std::string header =
      header_end == std::string::npos ? payload : payload.substr(0, header_end);
  if (header_end != std::string::npos) {
    // Body starts after the blank separator line (header \n \n body).
    size_t body_start = header_end + 1;
    if (body_start < payload.size() && payload[body_start] == '\n') {
      ++body_start;
    }
    request.body = payload.substr(body_start);
  }
  size_t pos = 0;
  bool first = true;
  while (pos < header.size()) {
    size_t space = header.find(' ', pos);
    if (space == std::string::npos) space = header.size();
    std::string token = header.substr(pos, space - pos);
    pos = space + 1;
    if (token.empty()) continue;
    if (first) {
      request.verb = token;
      first = false;
      continue;
    }
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("request param '" + token +
                                     "' is not key=value");
    }
    request.params[token.substr(0, eq)] = token.substr(eq + 1);
  }
  if (request.verb.empty()) {
    return Status::InvalidArgument("request has no verb");
  }
  return request;
}

std::string EncodeRequest(const Request& request) {
  std::string out = request.verb;
  for (const auto& [key, value] : request.params) {
    out += ' ';
    out += key;
    out += '=';
    out += IsToken(value) ? value : std::string("<non-token>");
  }
  if (!request.body.empty()) {
    out += "\n\n";
    out += request.body;
  }
  return out;
}

Response Response::Error(const Status& status) {
  Response response;
  response.ok = false;
  response.code = status.code();
  response.message = status.message();
  return response;
}

Status Response::ToStatus() const {
  if (ok) return Status::OK();
  return Status(code, message);
}

std::string Response::Field(const std::string& key,
                            const std::string& fallback) const {
  auto it = fields.find(key);
  return it == fields.end() ? fallback : it->second;
}

std::string EncodeResponse(const Response& response) {
  std::string out;
  if (response.ok) {
    out = "ok";
    for (const auto& [key, value] : response.fields) {
      out += ' ';
      out += key;
      out += '=';
      out += IsToken(value) ? value : std::string("<non-token>");
    }
  } else {
    // msg= is last and consumes the rest of the line, so the message may
    // contain spaces (but never a newline — that would open the body).
    std::string message = response.message;
    for (char& c : message) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    out = std::string("error code=") + StatusCodeToString(response.code) +
          " msg=" + message;
  }
  if (!response.body.empty()) {
    out += "\n\n";
    out += response.body;
  }
  return out;
}

Result<Response> ParseResponse(const std::string& payload) {
  Response response;
  size_t header_end = payload.find('\n');
  std::string header =
      header_end == std::string::npos ? payload : payload.substr(0, header_end);
  if (header_end != std::string::npos) {
    size_t body_start = header_end + 1;
    if (body_start < payload.size() && payload[body_start] == '\n') {
      ++body_start;
    }
    response.body = payload.substr(body_start);
  }
  if (header.rfind("ok", 0) == 0 &&
      (header.size() == 2 || header[2] == ' ')) {
    response.ok = true;
    size_t pos = 2;
    while (pos < header.size()) {
      size_t space = header.find(' ', pos);
      if (space == std::string::npos) space = header.size();
      std::string token = header.substr(pos, space - pos);
      pos = space + 1;
      if (token.empty()) continue;
      size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Status::InvalidArgument("response field '" + token +
                                       "' is not key=value");
      }
      response.fields[token.substr(0, eq)] = token.substr(eq + 1);
    }
    return response;
  }
  if (header.rfind("error ", 0) == 0) {
    response.ok = false;
    const std::string code_prefix = "error code=";
    if (header.rfind(code_prefix, 0) != 0) {
      return Status::InvalidArgument("error response missing code=");
    }
    size_t code_end = header.find(' ', code_prefix.size());
    if (code_end == std::string::npos) {
      return Status::InvalidArgument("error response missing msg=");
    }
    response.code =
        ParseStatusCodeName(header.substr(code_prefix.size(),
                                          code_end - code_prefix.size()));
    const std::string msg_prefix = "msg=";
    size_t msg_at = header.find(msg_prefix, code_end + 1);
    if (msg_at != code_end + 1) {
      return Status::InvalidArgument("error response missing msg=");
    }
    response.message = header.substr(msg_at + msg_prefix.size());
    return response;
  }
  return Status::InvalidArgument("response is neither ok nor error: '" +
                                 header.substr(0, 64) + "'");
}

StatusCode ParseStatusCodeName(const std::string& name) {
  static const StatusCode kCodes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kInfeasible,
      StatusCode::kBudgetExhausted, StatusCode::kInternal,
      StatusCode::kIoError,      StatusCode::kDeadlineExceeded,
      StatusCode::kUnavailable,
  };
  for (StatusCode code : kCodes) {
    if (name == StatusCodeToString(code)) return code;
  }
  return StatusCode::kInternal;
}

}  // namespace serve
}  // namespace diva
