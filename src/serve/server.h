#ifndef DIVA_SERVE_SERVER_H_
#define DIVA_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/mutex.h"
#include "common/parallel.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "constraint/diversity_constraint.h"
#include "core/diva.h"
#include "core/incremental.h"
#include "relation/relation.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"

namespace diva {
namespace serve {

/// Knobs of diva_serverd. Defaults favor tests (ephemeral port, small
/// queue); the daemon maps its command line onto this struct.
struct ServerOptions {
  /// TCP listen address. Loopback by default: the protocol has no auth.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the bound port back via Server::port()).
  int port = 0;
  /// Session workers — concurrent connections being served.
  size_t sessions = 2;
  /// Accepted connections allowed to wait for a session; beyond this the
  /// acceptor sheds by closing the connection cleanly.
  size_t queue_capacity = 16;
  /// Published results retained. Publishing past this evicts the oldest
  /// unpinned snapshot (serve/snapshot.h); a publish is refused only
  /// when every retained snapshot is pinned by an in-flight request.
  size_t snapshot_capacity = 64;
  /// Age bound on retained snapshots, in publish generations: after each
  /// publish, unpinned snapshots published this many (or more) publishes
  /// ago are evicted. 0 = no age bound (count-only retention).
  uint64_t snapshot_max_age = 0;
  /// Admission cost model: prior estimate and EWMA weight of new samples.
  double initial_cost_ms = 50.0;
  double ewma_alpha = 0.3;
  /// Watchdog sweep interval.
  double watchdog_poll_ms = 20.0;
  /// A request with no deadline is considered wedged after this long and
  /// its token is tripped (the anytime pipeline then degrades and
  /// returns; the response is still audited).
  double wedge_timeout_ms = 10000.0;
  /// Slack a deadlined request gets past its own deadline before the
  /// watchdog trips it — covers the gap between "token expired" and "the
  /// pipeline noticed".
  double deadline_grace_ms = 500.0;
  /// How long a drain (SIGTERM/Stop) waits for queued and in-flight work
  /// before force-cancelling what remains.
  double drain_grace_ms = 2000.0;
  /// Frames larger than this are rejected as corrupt.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// DivaOptions::threads for request pipelines. The deterministic pool
  /// is process-global, so every request runs at one width; 1 keeps
  /// concurrent sessions from thrashing SetParallelThreads.
  size_t pipeline_threads = 1;
  /// DivaOptions::shard for request pipelines: execute multi-component
  /// instances as concurrent per-component work items (never changes
  /// response bytes — see core/shard.h). Requests may override per call
  /// with a `shard` param.
  bool pipeline_shard = true;
  /// Default seed for request pipelines (requests may override per call).
  uint64_t seed = 42;
  /// Optional sink for one-line operational messages. Null = silent.
  /// Called from server threads; must be thread-safe.
  std::function<void(const std::string&)> logger;
};

/// Monotone request accounting, copyable snapshot. The chaos-suite
/// invariant is `requests == responses + response_failures` after
/// quiesce: every parsed request ends in a terminal response or a clean
/// close, no matter which failpoint fired.
struct ServerStats {
  uint64_t accepted_connections = 0;
  /// Connections shed before any read because the wait queue was full.
  uint64_t connection_overflow = 0;
  /// Frames parsed into a request (any verb).
  uint64_t requests = 0;
  /// Unparsable frames answered with an error response.
  uint64_t protocol_errors = 0;
  uint64_t admitted = 0;
  /// Requests refused by admission control (kUnavailable response).
  uint64_t shed = 0;
  /// Terminal responses successfully written.
  uint64_t responses = 0;
  /// Responses whose write failed; the connection was closed instead.
  uint64_t response_failures = 0;
  /// Responses that carried a degradation flag.
  uint64_t degraded = 0;
  /// In-flight tokens tripped by the watchdog.
  uint64_t watchdog_cancels = 0;
  uint64_t snapshots_published = 0;
  /// `update` requests that published (the served base was swapped).
  uint64_t updates = 0;
};

/// The anonymization service: loads one relation at construction, serves
/// anonymize / verify / fetch / stats / ping / update requests over the
/// framed protocol (serve/protocol.h), with admission control ahead of
/// the queue, per-request deadlines degrading through the anytime
/// pipeline (every response still audited), a watchdog for wedged
/// requests, and graceful drain. Threading: one acceptor, `sessions`
/// session workers and one watchdog, all hosted on a TaskGroup
/// (common/parallel.h).
///
/// `update` mutates the served base through a row delta (core/
/// incremental.h): it re-anonymizes the post-delta relation — reusing
/// the prior run's clean components when a pipeline snapshot chains —
/// audits, publishes-or-refuses, and only then swaps the base the other
/// verbs see. Because applying a delta interns new values into
/// dictionaries shared with the live base, updates run exclusively:
/// work verbs hold a read lease and an update waits them out.
class Server {
 public:
  Server(Relation base, ConstraintSet constraints, ServerOptions options);

  /// Stops the server (drain + force-cancel past the grace) if still
  /// running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the service threads.
  [[nodiscard]] Status Start();

  /// The bound TCP port (after Start); 0 before.
  int port() const { return port_; }

  /// Async-signal-safe drain request: one relaxed atomic store, nothing
  /// else — callable from a SIGTERM/SIGINT handler. Service loops notice
  /// within one poll interval: the acceptor stops accepting, queued and
  /// in-flight work gets ServerOptions::drain_grace_ms to finish, new
  /// requests are refused with kUnavailable.
  void RequestDrain() { draining_.store(true, std::memory_order_relaxed); }

  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Drains (if not already draining), waits out the grace, force-cancels
  /// stragglers and joins every service thread. Idempotent.
  void Stop();

  ServerStats stats() const;

  /// Requests currently being executed (0 after quiesce — the chaos
  /// suite's leak check).
  size_t inflight() const;

  /// Connections waiting for a session worker.
  size_t queued() const;

  const SnapshotStore& snapshots() const { return snapshots_; }

 private:
  struct Inflight {
    CancellationToken token;  // manual; the watchdog trips it
    double started_at = 0.0;
    double budget_ms = 0.0;  // wall budget before the watchdog steps in
    bool cancelled = false;  // watchdog already tripped it
  };

  void AcceptLoop();
  void SessionLoop();
  void WatchdogLoop();

  /// Serves one connection until the peer closes, a fatal frame error, a
  /// hard stop, or the drain grace runs out.
  void HandleConnection(int fd);

  /// Dispatches one parsed request and writes its terminal response.
  /// Returns false when the response write failed — the connection must
  /// be closed (a peer left on a silent socket would wait out its whole
  /// timeout for a response that is never coming).
  bool HandleRequest(int fd, const Request& request);

  /// A shared lease on the served state: holds the base relation alive
  /// and keeps `update` out until destroyed. Move-only.
  class ReadLease {
   public:
    ReadLease() = default;
    ReadLease(ReadLease&& other) noexcept
        : server_(other.server_), relation_(std::move(other.relation_)) {
      other.server_ = nullptr;
    }
    ReadLease& operator=(ReadLease&& other) noexcept {
      if (this != &other) {
        if (server_ != nullptr) server_->EndRead();
        server_ = other.server_;
        relation_ = std::move(other.relation_);
        other.server_ = nullptr;
      }
      return *this;
    }
    ReadLease(const ReadLease&) = delete;
    ReadLease& operator=(const ReadLease&) = delete;
    ~ReadLease() {
      if (server_ != nullptr) server_->EndRead();
    }
    const Relation& relation() const { return *relation_; }
    const std::shared_ptr<const Relation>& shared() const { return relation_; }

   private:
    friend class Server;
    ReadLease(Server* server, std::shared_ptr<const Relation> relation)
        : server_(server), relation_(std::move(relation)) {}
    Server* server_ = nullptr;
    std::shared_ptr<const Relation> relation_;
  };

  /// Takes a read lease on the served state, waiting out an in-progress
  /// update. Fails kUnavailable when `token` trips during the wait.
  [[nodiscard]] Result<ReadLease> BeginRead(const CancellationToken& token);
  void EndRead();

  /// Claims exclusive served-state access for an update: blocks new read
  /// leases and waits out live ones. Must be paired with EndUpdate.
  [[nodiscard]] Status BeginUpdate(const CancellationToken& token);
  void EndUpdate();

  Response HandleAnonymize(const Request& request);
  Response HandleVerify(const Request& request);
  Response HandleFetch(const Request& request);
  Response HandleStats(const Request& request);
  Response HandleUpdate(const Request& request);

  /// The body of HandleUpdate, run between BeginUpdate/EndUpdate:
  /// re-anonymizes the post-delta relation (incrementally when a prior
  /// snapshot chains), audits, publishes-or-refuses, and swaps the
  /// served state only after publication succeeded.
  Response RunUpdate(const DeltaBatch& delta, DivaOptions& options);

  /// Admission + execution wrapper shared by the work verbs.
  Response AdmitAndRun(const Request& request,
                       const std::function<Response(CancellationToken)>& run);

  /// Writes `response` and returns whether the write succeeded. A failed
  /// write is recorded (response_failures) and the caller must close the
  /// connection. Failpoint: serve.respond.
  bool Respond(int fd, const Response& response);

  uint64_t RegisterInflight(int64_t deadline_ms, CancellationToken* token);
  void UnregisterInflight(uint64_t id);

  /// Idempotent close of the listen socket (see listen_fd_).
  void CloseListener();

  void Log(const std::string& message) const;

  const ConstraintSet constraints_;
  const ServerOptions options_;

  /// Served state. `base_` is what anonymize/verify run against; an
  /// `update` swaps it for the post-delta relation and caches the run's
  /// pipeline snapshot so the next delta re-colors only dirty
  /// components. Updates are exclusive (update_active_), read verbs
  /// share (active_leases_) — applying a delta interns into dictionaries
  /// the live base shares, so the two must never overlap.
  mutable Mutex state_mutex_;
  CondVar state_cv_;
  size_t active_leases_ DIVA_GUARDED_BY(state_mutex_) = 0;
  bool update_active_ DIVA_GUARDED_BY(state_mutex_) = false;
  std::shared_ptr<const Relation> base_ DIVA_GUARDED_BY(state_mutex_);
  /// Reuse state of the last update's run; null until an update captures
  /// one (and after a degraded update — the chain then restarts cold).
  std::shared_ptr<const PipelineSnapshot> prior_ DIVA_GUARDED_BY(state_mutex_);
  SnapshotStore snapshots_;
  CostTracker cost_tracker_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  /// MonotonicSeconds when a loop first observed draining_ (0 = not yet);
  /// the drain grace counts from here.
  std::atomic<double> drain_started_at_{0.0};

  /// Closed by whichever of AcceptLoop (drain/stop exit) or Stop gets
  /// there first; the exchange makes the close idempotent. Closing the
  /// listener at drain resets backlogged handshakes and refuses new
  /// connects immediately, instead of letting peers wait on a socket no
  /// session will ever serve.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;

  mutable Mutex queue_mutex_;
  CondVar queue_cv_;
  std::deque<int> queue_ DIVA_GUARDED_BY(queue_mutex_);

  mutable Mutex inflight_mutex_;
  uint64_t next_request_id_ DIVA_GUARDED_BY(inflight_mutex_) = 1;
  std::map<uint64_t, Inflight> inflight_ DIVA_GUARDED_BY(inflight_mutex_);

  mutable Mutex stats_mutex_;
  ServerStats stats_ DIVA_GUARDED_BY(stats_mutex_);

  std::unique_ptr<TaskGroup> threads_;
  std::vector<uint64_t> tickets_;
  bool stopped_ = false;  // Stop() ran to completion (main thread only)
};

}  // namespace serve
}  // namespace diva

#endif  // DIVA_SERVE_SERVER_H_
