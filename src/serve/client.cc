#include "serve/client.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace diva {
namespace serve {

Result<Client> Client::Connect(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host '" + host + "'");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status status = Status::Unavailable("connect to " + host + ":" +
                                        std::to_string(port) + " failed: " +
                                        std::strerror(errno));
    ::close(fd);
    return status;
  }
  // No call may block forever: a server that dies (or drains) without
  // answering surfaces as a timed-out read — kUnavailable via Call —
  // instead of a wedged client.
  timeval timeout;
  timeout.tv_sec = 30;
  timeout.tv_usec = 0;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  return Client(fd);
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Response> Client::Call(const Request& request) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  Status written = WriteFrame(fd_, EncodeRequest(request));
  if (!written.ok()) {
    // A send into a connection the server shed reads as retryable.
    return Status::Unavailable("request write failed: " + written.message());
  }
  auto frame = ReadFrame(fd_);
  if (!frame.ok()) {
    // Any hangup before the response — clean EOF (NotFound) or a reset
    // (the acceptor sheds by closing connections whose request bytes it
    // never read, which the kernel reports as ECONNRESET) — means the
    // server dropped this call without failing it. Retryable.
    if (frame.status().code() == StatusCode::kNotFound ||
        frame.status().code() == StatusCode::kIoError) {
      return Status::Unavailable("server closed the connection (shed): " +
                                 frame.status().message());
    }
    return frame.status();
  }
  return ParseResponse(*frame);
}

}  // namespace serve
}  // namespace diva
