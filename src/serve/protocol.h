#ifndef DIVA_SERVE_PROTOCOL_H_
#define DIVA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace diva {
namespace serve {

/// Wire format of diva_serverd (docs/serving.md, "Wire protocol").
///
/// Transport: length-prefixed frames over a stream socket. Each frame is
/// a 4-byte big-endian payload length followed by that many bytes of
/// UTF-8 text. One request frame yields exactly one response frame;
/// requests on one connection are processed strictly in order.
///
/// Payload: a header line, then an optional body separated by one blank
/// line. Requests:  `verb key=value key=value ...`. Responses:
/// `ok key=value ...` or `error code=<StatusCode> msg=<rest of line>`.
/// `msg` consumes everything after `msg=` so error text may contain
/// spaces; every other value is a single token (no spaces, no newlines).

/// Frames above this size are rejected as corrupt rather than buffered —
/// a stray client writing garbage must not be able to balloon the
/// server's memory. Callers can pass a tighter cap.
inline constexpr size_t kDefaultMaxFrameBytes = 1u << 26;  // 64 MiB

/// Writes one frame. Handles short writes and EINTR; never raises
/// SIGPIPE (the peer hanging up surfaces as an IoError Status).
[[nodiscard]] Status WriteFrame(int fd, const std::string& payload);

/// Reads one frame. A clean EOF before any length byte returns NotFound
/// (the sentinel for "peer closed between frames" — not an error for a
/// server); EOF mid-frame or any read error returns IoError. Failpoint:
/// serve.frame.read.
[[nodiscard]] Result<std::string> ReadFrame(
    int fd, size_t max_bytes = kDefaultMaxFrameBytes);

/// A parsed request. Params keep deterministic (sorted) iteration order
/// so encoded requests are byte-stable — the loadgen replay driver
/// depends on that.
struct Request {
  std::string verb;
  std::map<std::string, std::string> params;
  std::string body;

  /// Param accessors with defaults; Int variants return `fallback` on
  /// missing keys but error on unparsable values.
  std::string Param(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] Result<int64_t> IntParam(const std::string& key,
                                         int64_t fallback) const;
  [[nodiscard]] Result<double> DoubleParam(const std::string& key,
                                           double fallback) const;
};

/// Decodes a request payload. Failpoint: serve.request.parse. Errors are
/// InvalidArgument naming the offending token.
[[nodiscard]] Result<Request> ParseRequest(const std::string& payload);

std::string EncodeRequest(const Request& request);

/// A response: `ok` with key=value fields, or an error carrying the
/// StatusCode and message of the Status that produced it.
struct Response {
  bool ok = true;
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::map<std::string, std::string> fields;
  std::string body;

  static Response Ok() { return Response{}; }
  static Response Error(const Status& status);

  /// Round-trips an error response back into the Status it encodes.
  Status ToStatus() const;

  std::string Field(const std::string& key, const std::string& fallback) const;
};

std::string EncodeResponse(const Response& response);

[[nodiscard]] Result<Response> ParseResponse(const std::string& payload);

/// Parses a StatusCode name as produced by StatusCodeToString
/// ("Unavailable", "IoError", ...). Unknown names map to kInternal so a
/// response from a newer server still surfaces as an error.
StatusCode ParseStatusCodeName(const std::string& name);

}  // namespace serve
}  // namespace diva

#endif  // DIVA_SERVE_PROTOCOL_H_
