#include "serve/snapshot.h"

#include "common/failpoint.h"

namespace diva {
namespace serve {

Result<uint64_t> SnapshotStore::Publish(Snapshot snapshot) {
  // The snapshot is complete at this point; the failpoint models a crash
  // on the publication path. Firing here proves the invariant: the store
  // is untouched, so no reader can see a half-published version.
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("serve.publish"));
  MutexLock lock(mutex_);
  if (snapshots_.size() >= capacity_) {
    return Status::Unavailable(
        "snapshot store full (" + std::to_string(snapshots_.size()) + "/" +
        std::to_string(capacity_) + "); restart the server or raise "
        "--snapshot-capacity");
  }
  snapshot.id = next_id_++;
  const uint64_t id = snapshot.id;
  snapshots_.emplace(id,
                     std::make_shared<const Snapshot>(std::move(snapshot)));
  return id;
}

std::shared_ptr<const Snapshot> SnapshotStore::Find(uint64_t id) const {
  MutexLock lock(mutex_);
  auto it = snapshots_.find(id);
  return it == snapshots_.end() ? nullptr : it->second;
}

uint64_t SnapshotStore::latest_id() const {
  MutexLock lock(mutex_);
  return snapshots_.empty() ? 0 : snapshots_.rbegin()->first;
}

size_t SnapshotStore::size() const {
  MutexLock lock(mutex_);
  return snapshots_.size();
}

}  // namespace serve
}  // namespace diva
