#include "serve/snapshot.h"

#include "common/failpoint.h"

namespace diva {
namespace serve {

void SnapshotPin::Release() {
  if (store_ != nullptr && snapshot_ != nullptr) store_->Unpin(snapshot_->id);
  store_ = nullptr;
  snapshot_ = nullptr;
}

Result<uint64_t> SnapshotStore::Publish(Snapshot snapshot) {
  // The snapshot is complete at this point; the failpoint models a crash
  // on the publication path. Firing here proves the invariant: the store
  // is untouched, so no reader can see a half-published version.
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("serve.publish"));
  MutexLock lock(mutex_);

  // Age sweep: the id about to be assigned is next_id_, so an entry's
  // age in publish generations is next_id_ - id. Pinned entries survive
  // and are reconsidered at the next publish.
  if (max_age_ > 0 && next_id_ > max_age_) {
    const uint64_t horizon = next_id_ - max_age_;
    for (auto it = snapshots_.begin();
         it != snapshots_.end() && it->first <= horizon;) {
      if (it->second.pins == 0) {
        it = snapshots_.erase(it);
        ++evicted_;
      } else {
        ++it;
      }
    }
  }

  // Capacity sweep: make room by retiring the oldest unpinned entry.
  // Refusal (everything pinned) happens before the insert, so a refused
  // publish never half-lands.
  while (snapshots_.size() >= capacity_) {
    auto victim = snapshots_.end();
    for (auto it = snapshots_.begin(); it != snapshots_.end(); ++it) {
      if (it->second.pins == 0) {
        victim = it;
        break;
      }
    }
    if (victim == snapshots_.end()) {
      return Status::Unavailable(
          "snapshot store full (" + std::to_string(snapshots_.size()) + "/" +
          std::to_string(capacity_) +
          ") and every snapshot is pinned; retry after in-flight fetches "
          "finish or raise --snapshot-capacity");
    }
    snapshots_.erase(victim);
    ++evicted_;
  }

  snapshot.id = next_id_++;
  const uint64_t id = snapshot.id;
  Entry entry;
  entry.snapshot = std::make_shared<const Snapshot>(std::move(snapshot));
  snapshots_.emplace(id, std::move(entry));
  return id;
}

std::shared_ptr<const Snapshot> SnapshotStore::Find(uint64_t id) const {
  MutexLock lock(mutex_);
  auto it = snapshots_.find(id);
  return it == snapshots_.end() ? nullptr : it->second.snapshot;
}

SnapshotPin SnapshotStore::Acquire(uint64_t id) {
  MutexLock lock(mutex_);
  auto it = snapshots_.find(id);
  if (it == snapshots_.end()) return SnapshotPin();
  ++it->second.pins;
  return SnapshotPin(this, it->second.snapshot);
}

void SnapshotStore::Unpin(uint64_t id) {
  MutexLock lock(mutex_);
  auto it = snapshots_.find(id);
  if (it != snapshots_.end() && it->second.pins > 0) --it->second.pins;
}

uint64_t SnapshotStore::latest_id() const {
  MutexLock lock(mutex_);
  return snapshots_.empty() ? 0 : snapshots_.rbegin()->first;
}

size_t SnapshotStore::size() const {
  MutexLock lock(mutex_);
  return snapshots_.size();
}

uint64_t SnapshotStore::evicted() const {
  MutexLock lock(mutex_);
  return evicted_;
}

}  // namespace serve
}  // namespace diva
