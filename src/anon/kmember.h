#ifndef DIVA_ANON_KMEMBER_H_
#define DIVA_ANON_KMEMBER_H_

#include "anon/anonymizer.h"

namespace diva {

/// Greedy k-member clustering (Byun, Kamra, Bertino, Li — DASFAA 2007),
/// adapted to the suppression cost model: each cluster is seeded with the
/// record furthest from the previous cluster's seed, then grown by
/// repeatedly adding the record whose inclusion raises the cluster's
/// ★ count the least. Leftover records (< k remaining) join the cluster
/// they are cheapest for.
///
/// Exact mode is O(N^2); with AnonymizerOptions::sample_size > 0 each
/// greedy step scans a random sample of the remaining records instead.
class KMemberAnonymizer final : public Anonymizer {
 public:
  explicit KMemberAnonymizer(const AnonymizerOptions& options)
      : options_(options) {}

  std::string name() const override { return "k-member"; }

  [[nodiscard]] Result<Clustering> BuildClusters(const Relation& relation,
                                   std::span<const RowId> rows,
                                   size_t k) override;

 private:
  AnonymizerOptions options_;
};

}  // namespace diva

#endif  // DIVA_ANON_KMEMBER_H_
