#ifndef DIVA_ANON_ANONYMIZER_H_
#define DIVA_ANON_ANONYMIZER_H_

#include <memory>
#include <span>
#include <string>

#include "anon/cluster.h"
#include "common/deadline.h"
#include "common/result.h"
#include "relation/relation.h"

namespace diva {

/// Shared knobs for the clustering-based k-anonymizers.
struct AnonymizerOptions {
  /// Seed for any randomized choice (seed selection, tie breaks).
  uint64_t seed = 42;

  /// When > 0, greedy candidate searches (k-member) evaluate at most this
  /// many randomly sampled candidates per step instead of all remaining
  /// rows. 0 = exact (quadratic) search. Keeps large |R| sweeps tractable;
  /// see DESIGN.md §3.
  size_t sample_size = 0;

  /// Cooperative cancellation. The iterative baselines (k-member, OKA)
  /// poll it once per outer greedy step and fail with kDeadlineExceeded
  /// when it trips — their half-built clusterings are useless, so RunDiva
  /// falls back to the single-pass Mondrian instead. Mondrian itself
  /// ignores the token (it is the fallback and near-linear). Default
  /// token never trips.
  CancellationToken cancel;
};

/// A clustering-based k-anonymization algorithm: partitions rows into
/// clusters of size >= k; suppression then turns each cluster into a
/// QI-group (Definition 2.2 via Algorithm 2).
class Anonymizer {
 public:
  virtual ~Anonymizer() = default;

  /// Algorithm name for reports ("k-member", "OKA", "Mondrian").
  virtual std::string name() const = 0;

  /// Partitions `rows` (row ids into `relation`) into clusters, each of
  /// size >= k, covering every row exactly once. Fails with Infeasible if
  /// 0 < |rows| < k.
  [[nodiscard]] virtual Result<Clustering> BuildClusters(const Relation& relation,
                                           std::span<const RowId> rows,
                                           size_t k) = 0;
};

/// Runs `anonymizer` over all rows of `relation` and applies suppression,
/// returning the k-anonymous relation R* (row ids preserved).
[[nodiscard]] Result<Relation> Anonymize(Anonymizer* anonymizer, const Relation& relation,
                           size_t k);

/// Factory helpers.
std::unique_ptr<Anonymizer> MakeKMember(const AnonymizerOptions& options = {});
std::unique_ptr<Anonymizer> MakeOka(const AnonymizerOptions& options = {});
std::unique_ptr<Anonymizer> MakeMondrian(
    const AnonymizerOptions& options = {});

}  // namespace diva

#endif  // DIVA_ANON_ANONYMIZER_H_
