#include "anon/anonymizer.h"

#include "anon/kmember.h"
#include "anon/mondrian.h"
#include "anon/oka.h"
#include "anon/suppress.h"

namespace diva {

Result<Relation> Anonymize(Anonymizer* anonymizer, const Relation& relation,
                           size_t k) {
  std::vector<RowId> rows(relation.NumRows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<RowId>(i);
  DIVA_ASSIGN_OR_RETURN(Clustering clusters,
                        anonymizer->BuildClusters(relation, rows, k));
  Relation out = relation;  // copy; row ids preserved
  SuppressClustersInPlace(&out, clusters);
  SuppressIdentifiers(&out);
  return out;
}

std::unique_ptr<Anonymizer> MakeKMember(const AnonymizerOptions& options) {
  return std::make_unique<KMemberAnonymizer>(options);
}

std::unique_ptr<Anonymizer> MakeOka(const AnonymizerOptions& options) {
  return std::make_unique<OkaAnonymizer>(options);
}

std::unique_ptr<Anonymizer> MakeMondrian(const AnonymizerOptions& options) {
  return std::make_unique<MondrianAnonymizer>(options);
}

}  // namespace diva
