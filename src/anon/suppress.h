#ifndef DIVA_ANON_SUPPRESS_H_
#define DIVA_ANON_SUPPRESS_H_

#include <span>

#include "anon/cluster.h"
#include "relation/relation.h"

namespace diva {

/// Suppression operator (paper Algorithm 2) applied in place: for every
/// cluster, each quasi-identifier attribute on which the cluster's tuples
/// disagree is replaced by kSuppressed in all of the cluster's rows, so
/// each cluster becomes a QI-group. Rows outside the clusters are
/// untouched. Sensitive and identifier attributes are never suppressed
/// here.
void SuppressClustersInPlace(Relation* relation, const Clustering& clustering);

/// Functional form of Algorithm 2: returns the relation R_s containing
/// exactly the clustered tuples (in cluster order) with non-unanimous QI
/// cells suppressed. Shares dictionaries with `relation`.
Relation Suppress(const Relation& relation, const Clustering& clustering);

/// Blanks every identifier-attribute cell (SSN-like columns uniquely
/// identify an individual and must never be published). Called by the
/// anonymizers on their final output.
void SuppressIdentifiers(Relation* relation);

/// Number of ★s that suppressing `cluster` would introduce:
/// |cluster| x (number of QI attributes without a unanimous,
/// non-suppressed value).
size_t SuppressionCost(const Relation& relation, std::span<const RowId> cluster);

}  // namespace diva

#endif  // DIVA_ANON_SUPPRESS_H_
