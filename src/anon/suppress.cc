#include "anon/suppress.h"

#include "common/counters.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace diva {

namespace {

/// True if all rows of `cluster` share one non-suppressed value on `col`.
bool Unanimous(const Relation& relation, std::span<const RowId> cluster,
               size_t col) {
  if (cluster.empty()) return true;
  ValueCode first = relation.At(cluster[0], col);
  if (first == kSuppressed) return false;
  for (size_t i = 1; i < cluster.size(); ++i) {
    if (relation.At(cluster[i], col) != first) return false;
  }
  return true;
}

/// True when no row appears in two clusters. Clusterings produced by the
/// pipeline are partitions, but callers may hand in anything; only a
/// verified-disjoint clustering is safe to suppress concurrently.
bool ClustersAreDisjoint(const Relation& relation,
                         const Clustering& clustering) {
  std::vector<bool> seen(relation.NumRows(), false);
  for (const Cluster& cluster : clustering) {
    for (RowId row : cluster) {
      if (row >= relation.NumRows() || seen[row]) return false;
      seen[row] = true;
    }
  }
  return true;
}

/// The per-cluster body of SuppressClustersInPlace: reads and writes only
/// `cluster`'s rows.
void SuppressOneCluster(Relation* relation, const Cluster& cluster,
                        const std::vector<size_t>& qi) {
  for (size_t col : qi) {
    if (!Unanimous(*relation, cluster, col)) {
      for (RowId row : cluster) relation->Set(row, col, kSuppressed);
      // Cells *written* by this subsystem, including work on speculative
      // trial copies (MergeLeftoverRows ranking, privacy merges) — a
      // work measure, not the published-star count (that is
      // suppress.stars, counted once against the input in RunDiva).
      DIVA_COUNTER_ADD("suppress.cells", cluster.size());
    }
  }
}

}  // namespace

void SuppressClustersInPlace(Relation* relation,
                             const Clustering& clustering) {
  DIVA_TRACE_SPAN("suppress/clusters");
  const auto& qi = relation->schema().qi_indices();
  // Disjoint clusters touch disjoint rows, so suppressing them
  // concurrently is literally the sequential computation re-ordered over
  // independent cells: same reads, same writes, same final relation.
  // Overlapping clusters (possible through the public API) would make a
  // later cluster's Unanimous check observe an earlier cluster's writes,
  // so they keep the ordered sequential path.
  if (ClustersAreDisjoint(*relation, clustering)) {
    ParallelFor(clustering.size(), /*grain=*/0, [&](size_t begin, size_t end) {
      for (size_t c = begin; c < end; ++c) {
        SuppressOneCluster(relation, clustering[c], qi);
      }
    });
    return;
  }
  for (const Cluster& cluster : clustering) {
    SuppressOneCluster(relation, cluster, qi);
  }
}

Relation Suppress(const Relation& relation, const Clustering& clustering) {
  Relation out = relation.EmptyLike();
  const auto& qi = relation.schema().qi_indices();
  for (const Cluster& cluster : clustering) {
    // Which QI columns survive for this cluster.
    std::vector<bool> keep(relation.NumAttributes(), true);
    for (size_t col : qi) {
      keep[col] = Unanimous(relation, cluster, col);
    }
    std::vector<ValueCode> row_codes(relation.NumAttributes());
    for (RowId row : cluster) {
      for (size_t col = 0; col < relation.NumAttributes(); ++col) {
        ValueCode code = relation.At(row, col);
        bool is_qi = relation.schema().IsQuasiIdentifier(col);
        row_codes[col] = (is_qi && !keep[col]) ? kSuppressed : code;
      }
      out.AppendRow(row_codes);
    }
  }
  return out;
}

void SuppressIdentifiers(Relation* relation) {
  for (size_t col : relation->schema().identifier_indices()) {
    for (RowId row = 0; row < relation->NumRows(); ++row) {
      relation->Set(row, col, kSuppressed);
    }
  }
}

size_t SuppressionCost(const Relation& relation,
                       std::span<const RowId> cluster) {
  size_t suppressed_columns = 0;
  for (size_t col : relation.schema().qi_indices()) {
    if (!Unanimous(relation, cluster, col)) ++suppressed_columns;
  }
  return suppressed_columns * cluster.size();
}

}  // namespace diva
