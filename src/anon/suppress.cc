#include "anon/suppress.h"

namespace diva {

namespace {

/// True if all rows of `cluster` share one non-suppressed value on `col`.
bool Unanimous(const Relation& relation, std::span<const RowId> cluster,
               size_t col) {
  if (cluster.empty()) return true;
  ValueCode first = relation.At(cluster[0], col);
  if (first == kSuppressed) return false;
  for (size_t i = 1; i < cluster.size(); ++i) {
    if (relation.At(cluster[i], col) != first) return false;
  }
  return true;
}

}  // namespace

void SuppressClustersInPlace(Relation* relation,
                             const Clustering& clustering) {
  const auto& qi = relation->schema().qi_indices();
  for (const Cluster& cluster : clustering) {
    for (size_t col : qi) {
      if (!Unanimous(*relation, cluster, col)) {
        for (RowId row : cluster) relation->Set(row, col, kSuppressed);
      }
    }
  }
}

Relation Suppress(const Relation& relation, const Clustering& clustering) {
  Relation out = relation.EmptyLike();
  const auto& qi = relation.schema().qi_indices();
  for (const Cluster& cluster : clustering) {
    // Which QI columns survive for this cluster.
    std::vector<bool> keep(relation.NumAttributes(), true);
    for (size_t col : qi) {
      keep[col] = Unanimous(relation, cluster, col);
    }
    std::vector<ValueCode> row_codes(relation.NumAttributes());
    for (RowId row : cluster) {
      for (size_t col = 0; col < relation.NumAttributes(); ++col) {
        ValueCode code = relation.At(row, col);
        bool is_qi = relation.schema().IsQuasiIdentifier(col);
        row_codes[col] = (is_qi && !keep[col]) ? kSuppressed : code;
      }
      out.AppendRow(row_codes);
    }
  }
  return out;
}

void SuppressIdentifiers(Relation* relation) {
  for (size_t col : relation->schema().identifier_indices()) {
    for (RowId row = 0; row < relation->NumRows(); ++row) {
      relation->Set(row, col, kSuppressed);
    }
  }
}

size_t SuppressionCost(const Relation& relation,
                       std::span<const RowId> cluster) {
  size_t suppressed_columns = 0;
  for (size_t col : relation.schema().qi_indices()) {
    if (!Unanimous(relation, cluster, col)) ++suppressed_columns;
  }
  return suppressed_columns * cluster.size();
}

}  // namespace diva
