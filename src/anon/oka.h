#ifndef DIVA_ANON_OKA_H_
#define DIVA_ANON_OKA_H_

#include "anon/anonymizer.h"

namespace diva {

/// OKA — One-pass K-means Anonymization (Lin & Wei, PAIS 2008).
///
/// Phase 1 (one-pass k-means): floor(N/k) centroids are seeded with random
/// records; every record is assigned to its nearest centroid, updating the
/// centroid immediately (a single pass, no convergence loop).
/// Phase 2 (adjustment): clusters larger than k give up their records
/// farthest from the centroid; those records refill clusters below k
/// (nearest-deficit-first), and any surplus joins its nearest cluster.
/// The result is a partition in which every cluster has >= k records.
class OkaAnonymizer final : public Anonymizer {
 public:
  explicit OkaAnonymizer(const AnonymizerOptions& options)
      : options_(options) {}

  std::string name() const override { return "OKA"; }

  [[nodiscard]] Result<Clustering> BuildClusters(const Relation& relation,
                                   std::span<const RowId> rows,
                                   size_t k) override;

 private:
  AnonymizerOptions options_;
};

}  // namespace diva

#endif  // DIVA_ANON_OKA_H_
