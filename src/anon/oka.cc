#include "anon/oka.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>

#include "anon/distance.h"
#include "common/counters.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/trace.h"

namespace diva {

namespace {

/// Mutable cluster centroid: per categorical QI attribute a value
/// histogram (distance = 1 - relative frequency of the record's value),
/// per numeric QI attribute a running mean (distance = normalized |v-mean|).
class Centroid {
 public:
  Centroid(const Relation& relation, const DistanceMetric& metric)
      : relation_(&relation), metric_(&metric) {
    const auto& qi = relation.schema().qi_indices();
    histograms_.resize(qi.size());
    sums_.assign(qi.size(), 0.0);
  }

  void Add(RowId row) {
    const auto& qi = relation_->schema().qi_indices();
    for (size_t i = 0; i < qi.size(); ++i) {
      ValueCode code = relation_->At(row, qi[i]);
      if (metric_->IsNumericColumn(qi[i])) {
        sums_[i] += NumericValue(qi[i], code);
      } else {
        ++histograms_[i][code];
      }
    }
    ++size_;
  }

  void Remove(RowId row) {
    // Always-on: removing from an empty centroid would wrap size_ and
    // poison every later Distance() call in release builds.
    DIVA_CHECK_MSG(size_ > 0, "Centroid::Remove on empty centroid");
    const auto& qi = relation_->schema().qi_indices();
    for (size_t i = 0; i < qi.size(); ++i) {
      ValueCode code = relation_->At(row, qi[i]);
      if (metric_->IsNumericColumn(qi[i])) {
        sums_[i] -= NumericValue(qi[i], code);
      } else {
        auto it = histograms_[i].find(code);
        // Always-on: dereferencing end() here is immediate UB in release
        // builds, so the DCHECK was load-bearing.
        DIVA_CHECK_MSG(it != histograms_[i].end() && it->second > 0,
                       "Centroid::Remove of a row that was never added");
        if (--it->second == 0) histograms_[i].erase(it);
      }
    }
    --size_;
  }

  double Distance(RowId row) const {
    if (size_ == 0) return 0.0;
    const auto& qi = relation_->schema().qi_indices();
    double total = 0.0;
    for (size_t i = 0; i < qi.size(); ++i) {
      ValueCode code = relation_->At(row, qi[i]);
      if (metric_->IsNumericColumn(qi[i])) {
        double mean = sums_[i] / static_cast<double>(size_);
        total += NormalizedGap(qi[i], NumericValue(qi[i], code), mean);
      } else {
        auto it = histograms_[i].find(code);
        double freq =
            it == histograms_[i].end()
                ? 0.0
                : static_cast<double>(it->second) / static_cast<double>(size_);
        total += 1.0 - freq;
      }
    }
    return total;
  }

  size_t size() const { return size_; }

  /// Distance() only reads; concurrent evaluations against the same
  /// centroid set are safe as long as no Add/Remove interleaves.

 private:
  double NumericValue(size_t col, ValueCode code) const {
    if (code == kSuppressed) return 0.0;
    auto v = relation_->dictionary(col).NumericValueOf(code);
    return v.value_or(0.0);
  }

  double NormalizedGap(size_t col, double a, double b) const {
    return std::fabs(a - b) * metric_->InvRange(col);
  }

  const Relation* relation_;
  const DistanceMetric* metric_;
  std::vector<std::unordered_map<ValueCode, uint32_t>> histograms_;
  std::vector<double> sums_;
  size_t size_ = 0;
};

}  // namespace

Result<Clustering> OkaAnonymizer::BuildClusters(const Relation& relation,
                                                std::span<const RowId> rows,
                                                size_t k) {
  DIVA_TRACE_SPAN("baseline/oka");
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("oka.build"));
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (rows.empty()) return Clustering{};
  if (rows.size() < k) {
    return Status::Infeasible(
        "cannot form a k-anonymous group from " +
        std::to_string(rows.size()) + " < k = " + std::to_string(k) +
        " tuples");
  }

  DistanceMetric metric(relation);
  Rng rng(options_.seed);
  size_t num_clusters = rows.size() / k;
  DIVA_CHECK_MSG(num_clusters >= 1, "OKA: zero clusters for |rows| >= k");

  std::vector<RowId> shuffled(rows.begin(), rows.end());
  rng.Shuffle(&shuffled);

  Clustering clusters(num_clusters);
  std::vector<Centroid> centroids;
  centroids.reserve(num_clusters);
  for (size_t c = 0; c < num_clusters; ++c) {
    centroids.emplace_back(relation, metric);
    centroids[c].Add(shuffled[c]);
    clusters[c].push_back(shuffled[c]);
  }

  // Nearest centroid to `row` under an optional deficit filter. The scan
  // only reads centroids, so it chunks over the centroid index: chunk
  // minima found with the same strict < and merged in ascending chunk
  // order give the sequential first-minimum for every thread count.
  // Below the threshold the single-chunk form of the identical
  // computation runs in place.
  constexpr size_t kMinParallelCentroidScan = 128;
  struct NearestHit {
    double distance = std::numeric_limits<double>::max();
    std::optional<size_t> target;
  };
  auto nearest = [&](RowId row, bool deficit_only) -> std::optional<size_t> {
    auto scan_chunk = [&](size_t begin, size_t end) {
      NearestHit local;
      for (size_t c = begin; c < end; ++c) {
        if (deficit_only && clusters[c].size() >= k) continue;
        double d = centroids[c].Distance(row);
        if (d < local.distance) {
          local.distance = d;
          local.target = c;
        }
      }
      return local;
    };
    NearestHit best;
    if (num_clusters < kMinParallelCentroidScan) {
      best = scan_chunk(0, num_clusters);
    } else {
      best = ParallelReduce<NearestHit>(
          num_clusters, /*grain=*/0, NearestHit{}, scan_chunk,
          [](NearestHit a, NearestHit b) {
            if (!b.target.has_value()) return a;
            if (!a.target.has_value() || b.distance < a.distance) return b;
            return a;
          });
    }
    return best.target;
  };

  // Phase 1: one pass, assign to nearest centroid, update immediately.
  // Rows stay sequential (each assignment moves a centroid); the centroid
  // scan inside `nearest` carries the parallelism.
  for (size_t i = num_clusters; i < shuffled.size(); ++i) {
    // One deadline poll per assignment: an abandoned half-assignment is
    // useless, so fail and let RunDiva fall back to Mondrian.
    if (options_.cancel.Cancelled()) {
      return DeadlineExceededStatus("OKA clustering");
    }
    RowId row = shuffled[i];
    auto target = nearest(row, /*deficit_only=*/false);
    DIVA_CHECK(target.has_value());
    centroids[*target].Add(row);
    clusters[*target].push_back(row);
  }

  // Phase 2a: trim oversized clusters, farthest-from-centroid first.
  // Each cluster's trim touches only its own rows and centroid, so the
  // clusters trim concurrently; per-cluster overflow lists concatenated
  // in cluster order equal the sequential overflow order.
  std::vector<std::vector<RowId>> trimmed =
      ParallelMap<std::vector<RowId>>(num_clusters, /*grain=*/1, [&](size_t c) {
        std::vector<RowId> evicted;
        while (clusters[c].size() > k) {
          size_t worst = 0;
          double worst_distance = -1.0;
          for (size_t i = 0; i < clusters[c].size(); ++i) {
            double d = centroids[c].Distance(clusters[c][i]);
            if (d > worst_distance) {
              worst_distance = d;
              worst = i;
            }
          }
          RowId row = clusters[c][worst];
          clusters[c][worst] = clusters[c].back();
          clusters[c].pop_back();
          centroids[c].Remove(row);
          evicted.push_back(row);
        }
        return evicted;
      });
  std::vector<RowId> overflow;
  for (const std::vector<RowId>& evicted : trimmed) {
    overflow.insert(overflow.end(), evicted.begin(), evicted.end());
  }

  // Phase 2b: refill deficit clusters first, then spread the surplus.

  for (RowId row : overflow) {
    auto target = nearest(row, /*deficit_only=*/true);
    if (!target.has_value()) target = nearest(row, /*deficit_only=*/false);
    DIVA_CHECK(target.has_value());
    centroids[*target].Add(row);
    clusters[*target].push_back(row);
  }

  // Phase 1 seeds every cluster with one record, so deficits are covered:
  // total rows >= num_clusters * k guarantees enough overflow existed.
  for (const Cluster& c : clusters) {
    DIVA_CHECK_MSG(c.size() >= k, "OKA adjustment left an undersized cluster");
  }
  DIVA_COUNTER_ADD("oka.clusters", clusters.size());
  return clusters;
}

}  // namespace diva
