#ifndef DIVA_ANON_DISTANCE_H_
#define DIVA_ANON_DISTANCE_H_

#include <vector>

#include "relation/relation.h"

namespace diva {

/// Normalized tuple distance over quasi-identifier attributes:
/// categorical attributes contribute 0/1 (Hamming), numeric attributes
/// contribute |a - b| / range. Suppressed cells mismatch everything
/// (including other suppressed cells, except themselves by identity).
///
/// Precomputes per-attribute numeric ranges once; Distance() is then a
/// plain scan of the QI columns.
class DistanceMetric {
 public:
  explicit DistanceMetric(const Relation& relation);

  /// Distance in [0, |QI|] between two rows.
  double Distance(RowId a, RowId b) const;

  /// True if attribute `col` is measured numerically (declared numeric
  /// and every dictionary value parses as a number).
  bool IsNumericColumn(size_t col) const { return numeric_[col]; }

  /// 1 / (max - min) over the attribute's numeric domain; 0 when the
  /// domain is degenerate or the column is not numeric.
  double InvRange(size_t col) const { return inv_range_[col]; }

 private:
  const Relation* relation_;
  std::vector<bool> numeric_;       // per attribute
  std::vector<double> inv_range_;   // per attribute; 0 if degenerate
};

/// Incremental suppression-cost tracker for greedy clustering (k-member).
/// Maintains, per QI attribute, the value shared by every member so far
/// (or "diverged"). Adding a tuple that disagrees on d more attributes
/// raises the cluster's ★ count from size*div to (size+1)*(div+d).
class ClusterCostTracker {
 public:
  explicit ClusterCostTracker(const Relation& relation);

  /// Restarts the cluster with a single seed row.
  void Reset(RowId seed);

  /// ★s added to the cluster's total if `candidate` joined now.
  size_t CostIncrease(RowId candidate) const;

  /// Adds `candidate` to the cluster.
  void Add(RowId candidate);

  size_t size() const { return size_; }
  /// Current total ★ count of the cluster.
  size_t TotalCost() const { return size_ * divergent_; }

 private:
  const Relation* relation_;
  std::vector<ValueCode> common_;  // per QI index position
  size_t size_ = 0;
  size_t divergent_ = 0;
};

}  // namespace diva

#endif  // DIVA_ANON_DISTANCE_H_
