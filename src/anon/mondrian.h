#ifndef DIVA_ANON_MONDRIAN_H_
#define DIVA_ANON_MONDRIAN_H_

#include "anon/anonymizer.h"

namespace diva {

/// Mondrian multidimensional partitioning (LeFevre, DeWitt, Ramakrishnan —
/// ICDE 2006), relaxed variant, emitting clusters for the suppression
/// model: partitions are recursively median-split on the QI attribute
/// with the widest normalized spread (numeric: value range; categorical:
/// number of distinct values) as long as both halves keep >= k rows;
/// unsplittable partitions become clusters.
class MondrianAnonymizer final : public Anonymizer {
 public:
  explicit MondrianAnonymizer(const AnonymizerOptions& options)
      : options_(options) {}

  std::string name() const override { return "Mondrian"; }

  [[nodiscard]] Result<Clustering> BuildClusters(const Relation& relation,
                                   std::span<const RowId> rows,
                                   size_t k) override;

 private:
  AnonymizerOptions options_;
};

}  // namespace diva

#endif  // DIVA_ANON_MONDRIAN_H_
