#ifndef DIVA_ANON_PRIVACY_H_
#define DIVA_ANON_PRIVACY_H_

#include "anon/cluster.h"
#include "common/deadline.h"
#include "common/result.h"
#include "relation/relation.h"

namespace diva {

/// Distinct l-diversity (Machanavajjhala et al.): every QI-group must
/// contain at least l distinct sensitive-attribute projections. The
/// paper lists l-diversity as the first privacy semantics DIVA extends
/// to ("DIVA is extensible to re-define the clustering criteria
/// according to these privacy semantics", Section 5).
///
/// True iff every QI-group of `relation` carries >= l distinct sensitive
/// projections. l <= 1 is trivially satisfied.
bool IsDistinctLDiverse(const Relation& relation, size_t l);

/// Number of distinct sensitive projections in the whole relation — the
/// upper limit of enforceable l.
size_t CountDistinctSensitiveProjections(const Relation& relation);

/// Post-processing enforcement: greedily merges clusters whose rows
/// carry fewer than l distinct sensitive projections into the cheapest
/// (fewest additional ★s) other cluster, re-suppressing merged clusters,
/// until every cluster is l-diverse. `clusters` must partition the rows
/// of `relation` into QI-groups (as produced by the anonymizers or by
/// DIVA). Fails with Infeasible when the relation holds fewer than l
/// distinct sensitive projections overall.
///
/// Merging only adds suppression, so k-anonymity is preserved and
/// diversity-constraint upper bounds cannot be violated; lower bounds
/// may lose occurrences (callers should re-verify).
///
/// `cancel` is polled once per merge: when it trips, the merges done so
/// far are kept and the (possibly still non-l-diverse) clustering is
/// returned — every intermediate state is a valid k-anonymous partition,
/// so truncation degrades privacy enforcement, never correctness. Callers
/// running under a deadline must re-check IsDistinctLDiverse.
[[nodiscard]] Result<Clustering> EnforceLDiversity(Relation* relation, Clustering clusters,
                                     size_t l,
                                     CancellationToken cancel = {});

/// t-closeness (Li, Li, Venkatasubramanian — ICDE 2007): the distribution
/// of each sensitive attribute within every QI-group must be within
/// distance t of its distribution in the whole relation. Categorical
/// attributes use the variational distance (equal-ground EMD); numeric
/// attributes the ordered earth-mover's distance over the value order.
///
/// Largest distance between any QI-group's sensitive distribution and
/// the global one, maximized over sensitive attributes — the smallest t
/// for which the relation is t-close. 0 for relations without rows,
/// QI-groups, or sensitive attributes.
double TClosenessDistance(const Relation& relation);

/// True iff TClosenessDistance(relation) <= t.
bool IsTClose(const Relation& relation, double t);

/// Post-processing enforcement mirroring EnforceLDiversity: merges the
/// cluster farthest from the global sensitive distribution into its
/// cheapest partner until every cluster is within t. Fails with
/// Infeasible if `t` cannot be met even by a single all-row cluster
/// (never happens for t >= 0: one cluster has distance 0).
/// `cancel` truncates the merge loop exactly as in EnforceLDiversity;
/// callers under a deadline must re-check IsTClose.
[[nodiscard]] Result<Clustering> EnforceTCloseness(Relation* relation, Clustering clusters,
                                     double t,
                                     CancellationToken cancel = {});

/// (X,Y)-anonymity (Wang & Fung — the third extension the paper lists):
/// every value combination of attributes X that occurs in the relation
/// must be linked to at least k distinct value combinations of
/// attributes Y. Classic k-anonymity is the special case X = QI,
/// Y = a tuple identifier. Suppressed cells count as one distinct value.
/// Fails with InvalidArgument when X or Y is empty or references an
/// out-of-range attribute.
[[nodiscard]] Result<bool> IsXYAnonymous(const Relation& relation,
                           const std::vector<size_t>& x_attributes,
                           const std::vector<size_t>& y_attributes, size_t k);

}  // namespace diva

#endif  // DIVA_ANON_PRIVACY_H_
