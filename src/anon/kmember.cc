#include "anon/kmember.h"

#include <limits>

#include "anon/distance.h"
#include "common/counters.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/trace.h"

namespace diva {

namespace {

/// Below this many candidates a greedy scan runs sequentially: the
/// fork-join handshake would cost more than the distance evaluations.
/// Purely a scheduling choice — both paths compute the identical argmin /
/// argmax, so results do not depend on which one runs.
constexpr size_t kMinParallelScan = 512;

/// Pool of not-yet-clustered rows with O(1) removal (swap with back).
class RowPool {
 public:
  explicit RowPool(std::span<const RowId> rows)
      : rows_(rows.begin(), rows.end()) {}

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  RowId at(size_t i) const { return rows_[i]; }

  RowId TakeAt(size_t i) {
    // Always-on: an out-of-range take would read and swap stale memory in
    // release builds.
    DIVA_CHECK_MSG(i < rows_.size(), "RowPool::TakeAt index out of range");
    RowId row = rows_[i];
    rows_[i] = rows_.back();
    rows_.pop_back();
    return row;
  }

 private:
  std::vector<RowId> rows_;
};

/// Indices to scan in the pool for a greedy step: all of them in exact
/// mode, or `sample_size` random ones.
size_t ScanCount(const RowPool& pool, size_t sample_size) {
  if (sample_size == 0 || pool.size() <= sample_size) return pool.size();
  return sample_size;
}

size_t PickIndex(const RowPool& pool, size_t scan, size_t step, Rng* rng) {
  if (scan == pool.size()) return step;  // exact scan
  return static_cast<size_t>(rng->NextBounded(pool.size()));
}

}  // namespace

Result<Clustering> KMemberAnonymizer::BuildClusters(
    const Relation& relation, std::span<const RowId> rows, size_t k) {
  DIVA_TRACE_SPAN("baseline/kmember");
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("kmember.build"));
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (rows.empty()) return Clustering{};
  if (rows.size() < k) {
    return Status::Infeasible(
        "cannot form a k-anonymous group from " +
        std::to_string(rows.size()) + " < k = " + std::to_string(k) +
        " tuples");
  }

  DistanceMetric metric(relation);
  Rng rng(options_.seed);
  RowPool pool(rows);
  Clustering clusters;
  std::vector<ClusterCostTracker> trackers;

  // Seed anchor: a random record (the paper's k-member starts from a
  // randomly chosen record and then picks the furthest one each round).
  RowId anchor = pool.at(static_cast<size_t>(rng.NextBounded(pool.size())));

  while (pool.size() >= k) {
    // One deadline poll per greedy cluster: a half-built clustering is
    // useless, so the caller (RunDiva) discards it and falls back to the
    // single-pass Mondrian baseline.
    if (options_.cancel.Cancelled()) {
      return DeadlineExceededStatus("k-member clustering");
    }
    // Furthest record from the previous anchor.
    size_t scan = ScanCount(pool, options_.sample_size);
    size_t best_index;
    if (scan == pool.size() && scan >= kMinParallelScan) {
      // Exact mode scans indices 0..scan-1 with no RNG draws, so the
      // argmax parallelizes: chunk maxima found with the same strict >
      // and merged in ascending chunk order reproduce the sequential
      // first-maximum exactly, ties included.
      struct Furthest {
        double distance = -1.0;
        size_t index = 0;
      };
      Furthest best = ParallelReduce<Furthest>(
          scan, /*grain=*/0, Furthest{},
          [&](size_t begin, size_t end) {
            Furthest local;
            for (size_t i = begin; i < end; ++i) {
              double d = metric.Distance(anchor, pool.at(i));
              if (d > local.distance) {
                local.distance = d;
                local.index = i;
              }
            }
            return local;
          },
          [](Furthest a, Furthest b) { return b.distance > a.distance ? b : a; });
      best_index = best.index;
    } else {
      double best_distance = -1.0;
      best_index = 0;
      for (size_t s = 0; s < scan; ++s) {
        size_t i = PickIndex(pool, scan, s, &rng);
        double d = metric.Distance(anchor, pool.at(i));
        if (d > best_distance) {
          best_distance = d;
          best_index = i;
        }
      }
    }
    RowId seed = pool.TakeAt(best_index);
    anchor = seed;

    ClusterCostTracker tracker(relation);
    tracker.Reset(seed);
    Cluster cluster = {seed};

    while (cluster.size() < k) {
      size_t grow_scan = ScanCount(pool, options_.sample_size);
      size_t cheapest_index;
      if (grow_scan == pool.size() && grow_scan >= kMinParallelScan) {
        // Same deterministic chunked argmin as the seed scan above.
        struct Cheapest {
          size_t cost = std::numeric_limits<size_t>::max();
          size_t index = 0;
        };
        Cheapest best = ParallelReduce<Cheapest>(
            grow_scan, /*grain=*/0, Cheapest{},
            [&](size_t begin, size_t end) {
              Cheapest local;
              for (size_t i = begin; i < end; ++i) {
                size_t cost = tracker.CostIncrease(pool.at(i));
                if (cost < local.cost) {
                  local.cost = cost;
                  local.index = i;
                }
              }
              return local;
            },
            [](Cheapest a, Cheapest b) { return b.cost < a.cost ? b : a; });
        cheapest_index = best.index;
      } else {
        size_t cheapest = std::numeric_limits<size_t>::max();
        cheapest_index = 0;
        for (size_t s = 0; s < grow_scan; ++s) {
          size_t i = PickIndex(pool, grow_scan, s, &rng);
          size_t cost = tracker.CostIncrease(pool.at(i));
          if (cost < cheapest) {
            cheapest = cost;
            cheapest_index = i;
          }
        }
      }
      RowId added = pool.TakeAt(cheapest_index);
      tracker.Add(added);
      cluster.push_back(added);
    }
    clusters.push_back(std::move(cluster));
    trackers.push_back(std::move(tracker));
  }

  // Distribute the (< k) leftovers to their cheapest clusters.
  while (!pool.empty()) {
    RowId row = pool.TakeAt(pool.size() - 1);
    size_t cheapest = std::numeric_limits<size_t>::max();
    size_t target = 0;
    for (size_t c = 0; c < clusters.size(); ++c) {
      size_t cost = trackers[c].CostIncrease(row);
      if (cost < cheapest) {
        cheapest = cost;
        target = c;
      }
    }
    trackers[target].Add(row);
    clusters[target].push_back(row);
  }

  DIVA_COUNTER_ADD("kmember.clusters", clusters.size());
  return clusters;
}

}  // namespace diva
