#include "anon/privacy.h"

#include <algorithm>
#include <limits>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "anon/suppress.h"
#include "common/counters.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/trace.h"
#include "relation/qi_groups.h"

namespace diva {

namespace {

/// FNV-1a hash of a row's sensitive projection.
uint64_t SensitiveKey(const Relation& relation, RowId row) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t col : relation.schema().sensitive_indices()) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(relation.At(row, col)));
    h *= 1099511628211ULL;
  }
  return h;
}

size_t DistinctSensitive(const Relation& relation,
                         const std::vector<RowId>& rows) {
  std::unordered_set<uint64_t> keys;
  for (RowId row : rows) keys.insert(SensitiveKey(relation, row));
  return keys.size();
}

}  // namespace

bool IsDistinctLDiverse(const Relation& relation, size_t l) {
  if (l <= 1) return true;
  QiGroups groups = ComputeQiGroups(relation);
  for (const auto& group : groups.groups) {
    if (DistinctSensitive(relation, group) < l) return false;
  }
  return true;
}

size_t CountDistinctSensitiveProjections(const Relation& relation) {
  std::unordered_set<uint64_t> keys;
  for (RowId row = 0; row < relation.NumRows(); ++row) {
    keys.insert(SensitiveKey(relation, row));
  }
  return keys.size();
}

Result<Clustering> EnforceLDiversity(Relation* relation, Clustering clusters,
                                     size_t l, CancellationToken cancel) {
  DIVA_TRACE_SPAN("privacy/l_diversity");
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("privacy.ldiversity"));
  if (l <= 1 || clusters.empty()) return clusters;
  if (CountDistinctSensitiveProjections(*relation) < l) {
    return Status::Infeasible(
        "relation has fewer than l = " + std::to_string(l) +
        " distinct sensitive projections");
  }

  // Iterate until stable: merge each violating cluster into the other
  // cluster whose union costs the fewest additional stars. Each merge
  // strictly reduces the cluster count, so this terminates. A tripped
  // deadline token truncates the loop: merges done so far are kept
  // (every intermediate state is a valid partition) and the caller
  // re-verifies diversity.
  bool changed = true;
  while (changed && clusters.size() > 1 && !cancel.Cancelled()) {
    changed = false;
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (DistinctSensitive(*relation, clusters[i]) >= l) continue;
      size_t best = clusters.size();
      size_t best_cost = std::numeric_limits<size_t>::max();
      for (size_t j = 0; j < clusters.size(); ++j) {
        if (j == i) continue;
        Cluster merged = clusters[i];
        merged.insert(merged.end(), clusters[j].begin(), clusters[j].end());
        size_t cost = SuppressionCost(*relation, merged);
        if (cost < best_cost) {
          best_cost = cost;
          best = j;
        }
      }
      DIVA_CHECK_MSG(best < clusters.size(),
                     "no merge partner for l-diversity enforcement");
      Cluster& target = clusters[best];
      target.insert(target.end(), clusters[i].begin(), clusters[i].end());
      clusters.erase(clusters.begin() + static_cast<long>(i));
      DIVA_COUNTER_ADD("privacy.merges", 1);
      changed = true;
      break;  // indices shifted; rescan
    }
  }

  // One cluster left but still short on sensitive variety is impossible:
  // the feasibility precheck guaranteed enough distinct projections.
  SuppressClustersInPlace(relation, clusters);
  return clusters;
}

namespace {

/// Distribution of sensitive attribute `col` over a set of rows, as
/// (code -> probability). Codes are ordered, which matters for the
/// numeric (ordered-EMD) case.
std::map<ValueCode, double> SensitiveDistribution(
    const Relation& relation, size_t col, const std::vector<RowId>& rows) {
  std::map<ValueCode, double> distribution;
  if (rows.empty()) return distribution;
  double unit = 1.0 / static_cast<double>(rows.size());
  for (RowId row : rows) distribution[relation.At(row, col)] += unit;
  return distribution;
}

/// Distance between a group's and the global distribution of sensitive
/// attribute `col`: ordered EMD for numeric attributes (normalized by
/// m - 1 positions over the union support), variational distance for
/// categorical ones.
double DistributionDistance(const Relation& relation, size_t col,
                            const std::map<ValueCode, double>& group,
                            const std::map<ValueCode, double>& global) {
  // Union support in value order. For numeric attributes order by the
  // parsed numeric value; categorical order is irrelevant (variational).
  std::vector<ValueCode> support;
  for (const auto& [code, p] : global) support.push_back(code);
  for (const auto& [code, p] : group) {
    if (!global.count(code)) support.push_back(code);
  }

  bool numeric = relation.schema().attribute(col).kind ==
                     AttributeKind::kNumeric &&
                 relation.dictionary(col).AllNumeric();
  auto prob = [](const std::map<ValueCode, double>& d, ValueCode c) {
    auto it = d.find(c);
    return it == d.end() ? 0.0 : it->second;
  };

  if (!numeric) {
    double total = 0.0;
    for (ValueCode code : support) {
      total += std::abs(prob(group, code) - prob(global, code));
    }
    return total / 2.0;
  }

  std::sort(support.begin(), support.end(), [&](ValueCode a, ValueCode b) {
    double va = a == kSuppressed ? -1e300
                                 : *relation.dictionary(col).NumericValueOf(a);
    double vb = b == kSuppressed ? -1e300
                                 : *relation.dictionary(col).NumericValueOf(b);
    return va < vb;
  });
  if (support.size() <= 1) return 0.0;
  double cumulative = 0.0;
  double emd = 0.0;
  for (ValueCode code : support) {
    cumulative += prob(group, code) - prob(global, code);
    emd += std::abs(cumulative);
  }
  return emd / static_cast<double>(support.size() - 1);
}

double MaxGroupDistance(const Relation& relation,
                        const std::vector<std::vector<RowId>>& groups) {
  double worst = 0.0;
  std::vector<RowId> all(relation.NumRows());
  for (RowId i = 0; i < relation.NumRows(); ++i) all[i] = i;
  for (size_t col : relation.schema().sensitive_indices()) {
    auto global = SensitiveDistribution(relation, col, all);
    for (const auto& group : groups) {
      auto local = SensitiveDistribution(relation, col, group);
      worst = std::max(worst,
                       DistributionDistance(relation, col, local, global));
    }
  }
  return worst;
}

}  // namespace

double TClosenessDistance(const Relation& relation) {
  if (relation.NumRows() == 0 ||
      relation.schema().sensitive_indices().empty()) {
    return 0.0;
  }
  QiGroups groups = ComputeQiGroups(relation);
  return MaxGroupDistance(relation, groups.groups);
}

bool IsTClose(const Relation& relation, double t) {
  return TClosenessDistance(relation) <= t + 1e-12;
}

Result<Clustering> EnforceTCloseness(Relation* relation, Clustering clusters,
                                     double t, CancellationToken cancel) {
  DIVA_TRACE_SPAN("privacy/t_closeness");
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("privacy.tcloseness"));
  if (t < 0.0) {
    return Status::InvalidArgument("t must be non-negative");
  }
  if (clusters.empty() ||
      relation->schema().sensitive_indices().empty()) {
    return clusters;
  }

  // A tripped deadline token truncates the merge loop (see
  // EnforceLDiversity); the caller re-verifies closeness.
  while (clusters.size() > 1 && !cancel.Cancelled()) {
    // Find the worst cluster.
    size_t worst = clusters.size();
    double worst_distance = t;
    for (size_t i = 0; i < clusters.size(); ++i) {
      double d = MaxGroupDistance(*relation, {clusters[i]});
      if (d > worst_distance + 1e-12) {
        worst_distance = d;
        worst = i;
      }
    }
    if (worst == clusters.size()) break;  // all within t

    size_t best = clusters.size();
    size_t best_cost = std::numeric_limits<size_t>::max();
    for (size_t j = 0; j < clusters.size(); ++j) {
      if (j == worst) continue;
      Cluster merged = clusters[worst];
      merged.insert(merged.end(), clusters[j].begin(), clusters[j].end());
      size_t cost = SuppressionCost(*relation, merged);
      if (cost < best_cost) {
        best_cost = cost;
        best = j;
      }
    }
    Cluster& target = clusters[best];
    target.insert(target.end(), clusters[worst].begin(),
                  clusters[worst].end());
    clusters.erase(clusters.begin() + static_cast<long>(worst));
    DIVA_COUNTER_ADD("privacy.merges", 1);
  }

  SuppressClustersInPlace(relation, clusters);
  return clusters;
}

Result<bool> IsXYAnonymous(const Relation& relation,
                           const std::vector<size_t>& x_attributes,
                           const std::vector<size_t>& y_attributes,
                           size_t k) {
  if (x_attributes.empty() || y_attributes.empty()) {
    return Status::InvalidArgument("X and Y must be non-empty");
  }
  for (size_t attr : x_attributes) {
    if (attr >= relation.NumAttributes()) {
      return Status::InvalidArgument("X attribute index out of range");
    }
  }
  for (size_t attr : y_attributes) {
    if (attr >= relation.NumAttributes()) {
      return Status::InvalidArgument("Y attribute index out of range");
    }
  }
  if (k <= 1) return true;

  auto project = [&relation](const std::vector<size_t>& attrs, RowId row) {
    uint64_t h = 1469598103934665603ULL;
    for (size_t attr : attrs) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(relation.At(row, attr)));
      h *= 1099511628211ULL;
    }
    return h;
  };

  // X-projection -> set of distinct Y-projections.
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> links;
  for (RowId row = 0; row < relation.NumRows(); ++row) {
    links[project(x_attributes, row)].insert(project(y_attributes, row));
  }
  for (const auto& [x, ys] : links) {
    if (ys.size() < k) return false;
  }
  return true;
}

}  // namespace diva
