#ifndef DIVA_ANON_CLUSTER_H_
#define DIVA_ANON_CLUSTER_H_

#include <vector>

#include "relation/value.h"

namespace diva {

/// A cluster: a set of row ids destined to become one QI-group.
using Cluster = std::vector<RowId>;

/// A clustering: disjoint clusters (S in the paper).
using Clustering = std::vector<Cluster>;

/// Total number of rows across all clusters.
inline size_t TotalRows(const Clustering& clustering) {
  size_t total = 0;
  for (const Cluster& c : clustering) total += c.size();
  return total;
}

}  // namespace diva

#endif  // DIVA_ANON_CLUSTER_H_
