#include "anon/mondrian.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "anon/distance.h"
#include "common/counters.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/trace.h"

namespace diva {

namespace {

/// Scalar sort key of a row on one attribute: the numeric value for
/// numeric attributes, the dictionary code otherwise (an arbitrary but
/// consistent total order; suppressed sorts first).
double SortKey(const Relation& relation, const DistanceMetric& metric,
               RowId row, size_t col) {
  ValueCode code = relation.At(row, col);
  if (code == kSuppressed) return -1e300;
  if (metric.IsNumericColumn(col)) {
    return *relation.dictionary(col).NumericValueOf(code);
  }
  return static_cast<double>(code);
}

/// Normalized spread of `col` over `rows`: fraction of the attribute's
/// global span (numeric) or of its domain size (categorical) covered.
double Spread(const Relation& relation, const DistanceMetric& metric,
              const std::vector<RowId>& rows, size_t col) {
  if (rows.empty()) return 0.0;
  if (metric.IsNumericColumn(col)) {
    double lo = SortKey(relation, metric, rows[0], col);
    double hi = lo;
    for (RowId row : rows) {
      double v = SortKey(relation, metric, row, col);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const Dictionary& dict = relation.dictionary(col);
    double dlo = 0.0;
    double dhi = 0.0;
    bool first = true;
    for (size_t c = 0; c < dict.size(); ++c) {
      double v = *dict.NumericValueOf(static_cast<ValueCode>(c));
      if (first) {
        dlo = dhi = v;
        first = false;
      } else {
        dlo = std::min(dlo, v);
        dhi = std::max(dhi, v);
      }
    }
    return dhi > dlo ? (hi - lo) / (dhi - dlo) : 0.0;
  }
  std::unordered_set<ValueCode> distinct;
  for (RowId row : rows) distinct.insert(relation.At(row, col));
  size_t domain = relation.dictionary(col).size();
  return domain > 0
             ? static_cast<double>(distinct.size()) / static_cast<double>(domain)
             : 0.0;
}

/// Tries to split `rows` on `col`: sorts by the attribute's key and cuts
/// at the value boundary closest to the median such that both sides keep
/// >= k rows. Returns false when no such boundary exists.
bool TrySplit(const Relation& relation, const DistanceMetric& metric,
              const std::vector<RowId>& rows, size_t col, size_t k,
              std::vector<RowId>* lhs, std::vector<RowId>* rhs) {
  if (rows.size() < 2 * k) return false;
  std::vector<RowId> sorted = rows;
  std::stable_sort(sorted.begin(), sorted.end(), [&](RowId a, RowId b) {
    return SortKey(relation, metric, a, col) <
           SortKey(relation, metric, b, col);
  });

  // Candidate cut positions: indices i where key(i-1) != key(i), so equal
  // values stay together. Pick the one closest to the middle respecting k.
  size_t n = sorted.size();
  size_t best_cut = 0;
  double best_gap = 1e300;
  for (size_t i = k; i + k <= n; ++i) {
    double prev = SortKey(relation, metric, sorted[i - 1], col);
    double curr = SortKey(relation, metric, sorted[i], col);
    if (prev == curr) continue;
    double gap = std::fabs(static_cast<double>(i) -
                           static_cast<double>(n) / 2.0);
    if (gap < best_gap) {
      best_gap = gap;
      best_cut = i;
    }
  }
  if (best_cut == 0) return false;
  lhs->assign(sorted.begin(), sorted.begin() + best_cut);
  rhs->assign(sorted.begin() + best_cut, sorted.end());
  return true;
}

void Partition(const Relation& relation, const DistanceMetric& metric,
               std::vector<RowId> rows, size_t k, Clustering* out) {
  const auto& qi = relation.schema().qi_indices();

  if (rows.size() >= 2 * k) {
    // Attributes by decreasing spread; first that admits an allowable cut
    // wins (the classic "choose widest dimension" heuristic with
    // fallback).
    std::vector<size_t> order(qi.begin(), qi.end());
    std::vector<double> spread(relation.NumAttributes(), 0.0);
    for (size_t col : qi) spread[col] = Spread(relation, metric, rows, col);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return spread[a] > spread[b];
    });
    for (size_t col : order) {
      std::vector<RowId> lhs;
      std::vector<RowId> rhs;
      if (TrySplit(relation, metric, rows, col, k, &lhs, &rhs)) {
        Partition(relation, metric, std::move(lhs), k, out);
        Partition(relation, metric, std::move(rhs), k, out);
        return;
      }
    }
  }
  out->push_back(std::move(rows));
}

}  // namespace

Result<Clustering> MondrianAnonymizer::BuildClusters(
    const Relation& relation, std::span<const RowId> rows, size_t k) {
  DIVA_TRACE_SPAN("baseline/mondrian");
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("mondrian.build"));
  // Mondrian deliberately ignores options_.cancel: it is the deadline
  // fallback and near-linear, so it always runs to completion.
  (void)options_;
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (rows.empty()) return Clustering{};
  if (rows.size() < k) {
    return Status::Infeasible(
        "cannot form a k-anonymous group from " +
        std::to_string(rows.size()) + " < k = " + std::to_string(k) +
        " tuples");
  }
  DistanceMetric metric(relation);
  Clustering clusters;
  Partition(relation, metric, {rows.begin(), rows.end()}, k, &clusters);
  for (const Cluster& c : clusters) {
    DIVA_CHECK_MSG(c.size() >= k, "Mondrian produced an undersized partition");
  }
  DIVA_COUNTER_ADD("mondrian.clusters", clusters.size());
  return clusters;
}

}  // namespace diva
