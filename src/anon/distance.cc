#include "anon/distance.h"

#include <cmath>

#include "common/logging.h"

namespace diva {

DistanceMetric::DistanceMetric(const Relation& relation)
    : relation_(&relation),
      numeric_(relation.NumAttributes(), false),
      inv_range_(relation.NumAttributes(), 0.0) {
  for (size_t col : relation.schema().qi_indices()) {
    const Attribute& attr = relation.schema().attribute(col);
    if (attr.kind != AttributeKind::kNumeric) continue;
    const Dictionary& dict = relation.dictionary(col);
    if (!dict.AllNumeric()) continue;
    double lo = 0.0;
    double hi = 0.0;
    bool first = true;
    for (size_t code = 0; code < dict.size(); ++code) {
      double v = *dict.NumericValueOf(static_cast<ValueCode>(code));
      if (first) {
        lo = hi = v;
        first = false;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    numeric_[col] = true;
    inv_range_[col] = (hi > lo) ? 1.0 / (hi - lo) : 0.0;
  }
}

double DistanceMetric::Distance(RowId a, RowId b) const {
  double total = 0.0;
  for (size_t col : relation_->schema().qi_indices()) {
    ValueCode ca = relation_->At(a, col);
    ValueCode cb = relation_->At(b, col);
    if (ca == cb) {
      if (ca == kSuppressed) total += 1.0;  // two stars are incomparable
      continue;
    }
    if (ca == kSuppressed || cb == kSuppressed) {
      total += 1.0;
      continue;
    }
    if (numeric_[col]) {
      double va = *relation_->dictionary(col).NumericValueOf(ca);
      double vb = *relation_->dictionary(col).NumericValueOf(cb);
      total += std::fabs(va - vb) * inv_range_[col];
    } else {
      total += 1.0;
    }
  }
  return total;
}

ClusterCostTracker::ClusterCostTracker(const Relation& relation)
    : relation_(&relation),
      common_(relation.schema().qi_indices().size(), kSuppressed) {}

void ClusterCostTracker::Reset(RowId seed) {
  const auto& qi = relation_->schema().qi_indices();
  for (size_t i = 0; i < qi.size(); ++i) {
    common_[i] = relation_->At(seed, qi[i]);
  }
  size_ = 1;
  divergent_ = 0;
  // A seed with suppressed cells starts with those attributes diverged.
  for (size_t i = 0; i < qi.size(); ++i) {
    if (common_[i] == kSuppressed) ++divergent_;
  }
}

size_t ClusterCostTracker::CostIncrease(RowId candidate) const {
  DIVA_DCHECK(size_ > 0);
  const auto& qi = relation_->schema().qi_indices();
  size_t new_divergent = divergent_;
  for (size_t i = 0; i < qi.size(); ++i) {
    if (common_[i] == kSuppressed) continue;  // already diverged
    if (relation_->At(candidate, qi[i]) != common_[i]) ++new_divergent;
  }
  return (size_ + 1) * new_divergent - size_ * divergent_;
}

void ClusterCostTracker::Add(RowId candidate) {
  DIVA_DCHECK(size_ > 0);
  const auto& qi = relation_->schema().qi_indices();
  for (size_t i = 0; i < qi.size(); ++i) {
    if (common_[i] == kSuppressed) continue;
    if (relation_->At(candidate, qi[i]) != common_[i]) {
      common_[i] = kSuppressed;
      ++divergent_;
    }
  }
  ++size_;
}

}  // namespace diva
